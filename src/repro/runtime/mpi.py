"""Simulated MPI with explicit scaling (one rank per stack).

The paper's device-to-device benchmark uses "MPICH with Level Zero
support that can transfer GPU buffers using the MPI routines.
Non-blocking routines such as MPI_Isend() and MPI_IRecv() are used"
(Section IV-A.4).  This module provides that API over the simulated node:

* SPMD execution: :meth:`SimMPI.run` launches one Python thread per rank;
* each rank owns a **virtual clock**; communication advances clocks with
  Lamport-style ``max(local, remote_send + transfer_time)`` so timing is
  deterministic regardless of thread scheduling;
* GPU buffers route through the fabric model (local MDFI pair vs remote
  Xe-Link with plane routing), host payloads through PCIe/DDR;
* collectives (barrier, allreduce, bcast, gather, allgather) use a
  log2(P) tree cost model.

Deadlocks in user code surface as :class:`repro.errors.MPIError` after a
timeout rather than hanging the test suite.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import MPIError
from ..hw.ids import StackRef
from ..sim.engine import PerfEngine
from .binding import RankBinding, explicit_scaling_binding

__all__ = ["SimMPI", "Communicator", "Request", "SUM", "MAX", "MIN"]

_TIMEOUT_S = 60.0

SUM = "sum"
MAX = "max"
MIN = "min"

_OPS = {SUM: np.add.reduce, MAX: np.maximum.reduce, MIN: np.minimum.reduce}

#: Collective trace labels -> the MPI API name the profiler records.
_COLLECTIVE_API = {
    "barrier": "MPI_Barrier",
    "allreduce": "MPI_Allreduce",
    "bcast": "MPI_Bcast",
    "gather": "MPI_Gather",
    "allgather": "MPI_Allgather",
}


def _host_us(api: str) -> float:
    from ..profiler.core import host_overhead_us

    return host_overhead_us(api)


@dataclass
class _Message:
    payload: np.ndarray
    nbytes: int
    send_vtime: float
    src: int
    #: CRC32 of the payload *as sent* — verified at receive so in-flight
    #: corruption (injected or otherwise) is detected, not consumed.
    checksum: int | None = None
    #: Link time computed once at send; the receiver reuses it (same route,
    #: same cost) instead of re-querying the engine.
    transfer_s: float = 0.0


class _Context:
    """State shared by all ranks of one run."""

    def __init__(self, size: int, timeout_s: float | None = None) -> None:
        self.size = size
        self.cond = threading.Condition()
        self.mailboxes: dict[tuple[int, int, int], deque[_Message]] = {}
        self.coll_gen = 0
        self.coll_entries: dict[int, dict[int, tuple[float, object]]] = {}
        self.coll_result: dict[int, tuple[float, object]] = {}
        #: Set (once) when any rank raises: ``(rank, exception)``.  Every
        #: wait predicate checks it, so surviving ranks fail fast instead
        #: of blocking out their full timeout.
        self.poison: tuple[int, BaseException] | None = None
        self._timeout_s = timeout_s

    @property
    def timeout_s(self) -> float:
        # Fall back to the module global at *wait* time so tests that
        # monkeypatch ``_TIMEOUT_S`` keep working.
        return self._timeout_s if self._timeout_s is not None else _TIMEOUT_S

    def set_poison(self, rank: int, exc: BaseException) -> None:
        with self.cond:
            if self.poison is None:
                self.poison = (rank, exc)
            self.cond.notify_all()


def _poison_error(ctx: _Context, rank: int, doing: str) -> MPIError:
    assert ctx.poison is not None
    src_rank, cause = ctx.poison
    err = MPIError(
        f"rank {rank}: {doing} abandoned because rank {src_rank} failed: "
        f"{cause}"
    )
    err.poisoned = True  # type: ignore[attr-defined]
    err.failing_rank = src_rank  # type: ignore[attr-defined]
    return err


class Request:
    """A non-blocking communication handle."""

    def __init__(self, comm: "Communicator", kind: str, **kw) -> None:
        self._comm = comm
        self._kind = kind
        self._kw = kw
        self._done = False
        self._payload: np.ndarray | None = None

    def wait(self) -> np.ndarray | None:
        """Complete the operation, advancing the rank's virtual clock."""
        if self._done:
            return self._payload
        before = self._comm._vtime
        if self._kind == "send":
            self._comm._complete_send(self._kw["vtime_done"])
        else:
            self._payload = self._comm._complete_recv(
                self._kw["source"], self._kw["tag"], self._kw["post_vtime"]
            )
        self._done = True
        # Host time charged to MPI_Wait is the virtual time this rank
        # spent blocked, plus the fixed call overhead.
        self._comm._profile(
            "MPI_Wait",
            host_us=2.0 + (self._comm._vtime - before) * 1e6,
        )
        return self._payload

    @property
    def done(self) -> bool:
        return self._done


class Communicator:
    """One rank's communicator (COMM_WORLD of the simulated job)."""

    def __init__(
        self,
        ctx: _Context,
        engine: PerfEngine,
        binding: RankBinding,
        bindings: Sequence[RankBinding],
    ) -> None:
        self._ctx = ctx
        self._engine = engine
        self.binding = binding
        self._bindings = list(bindings)
        self._vtime = 0.0
        tel = engine.telemetry
        self._tel = tel
        self._lane = tel.rank_lane(binding.rank) if tel is not None else None
        self._profiler = getattr(tel, "profiler", None) if tel else None
        if self._profiler is not None:
            from ..profiler.core import MPI_POINTS

            self._profiler.register("mpi", *MPI_POINTS)

    def _profile(self, name: str, **kw) -> None:
        """One intercepted MPI call.  Rank virtual clocks restart at zero
        for every :meth:`SimMPI.run`, so MPI records stay out of the
        per-stream clock-monotonicity check (no ``clock_us``)."""
        if self._profiler is not None:
            self._profiler.record(name, "mpi", **kw)

    def _trace(
        self, name: str, start_s: float, duration_s: float, **args
    ) -> None:
        """One complete event on this rank's lane (virtual-clock times)."""
        if self._tel is not None and self._lane is not None:
            self._tel.tracer.complete(
                name,
                self._lane,
                duration_us=max(0.0, duration_s) * 1e6,
                start_us=start_s * 1e6,
                category="transfer",
                **args,
            )

    # -- identity ---------------------------------------------------------

    def Get_rank(self) -> int:
        return self.binding.rank

    def Get_size(self) -> int:
        return self._ctx.size

    @property
    def rank(self) -> int:
        return self.binding.rank

    @property
    def size(self) -> int:
        return self._ctx.size

    def stack_of(self, rank: int) -> StackRef:
        return self._bindings[rank].stack

    # -- virtual time -------------------------------------------------------

    @property
    def now(self) -> float:
        """This rank's virtual clock (seconds)."""
        return self._vtime

    def advance(self, seconds: float) -> None:
        """Account local (compute) time."""
        if seconds < 0:
            raise MPIError("cannot advance time backwards")
        self._vtime += seconds

    # -- point to point -----------------------------------------------------

    def _transfer_seconds(self, src: int, dst: int, nbytes: int) -> float:
        return self._engine.p2p_transfer_time(
            self.stack_of(src), self.stack_of(dst), nbytes
        )

    def Isend(
        self,
        buf: np.ndarray,
        dest: int,
        tag: int = 0,
        nbytes: int | None = None,
    ) -> Request:
        """Non-blocking send of a (GPU-resident) NumPy buffer.

        ``nbytes`` overrides the timed message size — benchmarks declare
        the paper's 500 MB messages while carrying a small functional
        payload, keeping the simulation's memory footprint bounded.
        """
        self._check_rank(dest)
        if dest == self.rank:
            raise MPIError("self-sends are not supported")
        buf = np.ascontiguousarray(buf)
        size = buf.nbytes if nbytes is None else int(nbytes)
        if size < buf.nbytes:
            raise MPIError("declared nbytes smaller than the payload")
        payload = buf.copy()
        faults = self._engine.faults
        checksum = None
        if faults is not None:
            # Checksum before any in-flight corruption so the receiver
            # can detect (rather than silently consume) a damaged message.
            checksum = faults.checksum(payload)
            faults.corrupt_payload(payload, self.rank, dest)
        transfer_s = self._transfer_seconds(self.rank, dest, size)
        msg = _Message(
            payload=payload,
            nbytes=size,
            send_vtime=self._vtime,
            src=self.rank,
            checksum=checksum,
            transfer_s=transfer_s,
        )
        key = (self.rank, dest, tag)
        with self._ctx.cond:
            self._ctx.mailboxes.setdefault(key, deque()).append(msg)
            self._ctx.cond.notify_all()
        done = self._vtime + transfer_s
        self._trace(
            f"send -> rank {dest}",
            self._vtime,
            transfer_s,
            nbytes=size,
            tag=tag,
        )
        if self._tel is not None:
            self._tel.metrics.inc("mpi.messages", rank=self.rank)
            self._tel.metrics.inc("mpi.bytes", float(size), rank=self.rank)
        self._profile("MPI_Isend", bytes_moved=float(size))
        return Request(self, "send", vtime_done=done)

    def Irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; ``wait()`` returns the array."""
        self._check_rank(source)
        self._profile("MPI_Irecv")
        return Request(
            self, "recv", source=source, tag=tag, post_vtime=self._vtime
        )

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        self.Isend(buf, dest, tag).wait()

    def Recv(self, source: int, tag: int = 0) -> np.ndarray:
        out = self.Irecv(source, tag).wait()
        assert out is not None
        return out

    def Waitall(self, requests: Sequence[Request]) -> list[np.ndarray | None]:
        return [r.wait() for r in requests]

    def Sendrecv(
        self, buf: np.ndarray, peer: int, tag: int = 0
    ) -> np.ndarray:
        """Simultaneous exchange with *peer* (used by the bidirectional
        bandwidth benchmark)."""
        send = self.Isend(buf, peer, tag)
        recv = self.Irecv(peer, tag)
        out = recv.wait()
        send.wait()
        assert out is not None
        return out

    def _complete_send(self, vtime_done: float) -> None:
        self._vtime = max(self._vtime, vtime_done)

    def _complete_recv(self, source: int, tag: int, post_vtime: float) -> np.ndarray:
        key = (source, self.rank, tag)
        ctx = self._ctx
        with ctx.cond:
            ok = ctx.cond.wait_for(
                lambda: ctx.poison is not None or ctx.mailboxes.get(key),
                timeout=ctx.timeout_s,
            )
            if not ctx.mailboxes.get(key):
                if ctx.poison is not None:
                    raise _poison_error(
                        ctx, self.rank, f"recv from {source} tag {tag}"
                    )
                assert not ok
                raise MPIError(
                    f"rank {self.rank}: recv from {source} tag {tag} timed out"
                    " (deadlock?)"
                )
            msg = ctx.mailboxes[key].popleft()
        faults = self._engine.faults
        if (
            msg.checksum is not None
            and faults is not None
            and faults.checksum(msg.payload) != msg.checksum
        ):
            raise MPIError(
                f"rank {self.rank}: message corruption detected "
                f"(from {source}, tag {tag}): checksum mismatch"
            )
        arrive = msg.send_vtime + msg.transfer_s
        self._vtime = max(self._vtime, post_vtime, arrive)
        self._trace(
            f"recv <- rank {source}",
            post_vtime,
            self._vtime - post_vtime,
            nbytes=msg.nbytes,
            tag=tag,
        )
        return msg.payload

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise MPIError(f"rank {rank} out of range [0, {self.size})")

    # -- collectives ---------------------------------------------------------

    def _collective(
        self, value: object, finish: Callable, label: str = "collective"
    ) -> object:
        """Generic rendezvous: all ranks deposit (vtime, value); the last
        arrival computes the result and the completion time."""
        ctx = self._ctx
        entered = self._vtime
        with ctx.cond:
            gen = ctx.coll_gen
            entries = ctx.coll_entries.setdefault(gen, {})
            if self.rank in entries:
                raise MPIError("rank entered the same collective twice")
            entries[self.rank] = (self._vtime, value)
            if len(entries) == ctx.size:
                vtimes = [t for t, _ in entries.values()]
                values = {r: v for r, (_, v) in entries.items()}
                result, cost = finish(values)
                ctx.coll_result[gen] = (max(vtimes) + cost, result)
                ctx.coll_gen += 1
                ctx.cond.notify_all()
            else:
                ok = ctx.cond.wait_for(
                    lambda: gen in ctx.coll_result or ctx.poison is not None,
                    timeout=ctx.timeout_s,
                )
                if gen not in ctx.coll_result:
                    if ctx.poison is not None:
                        raise _poison_error(ctx, self.rank, "collective")
                    assert not ok
                    raise MPIError(
                        f"rank {self.rank}: collective timed out (deadlock?)"
                    )
        done_vtime, result = ctx.coll_result[gen]
        self._vtime = max(self._vtime, done_vtime)
        self._trace(label, entered, self._vtime - entered)
        if self._tel is not None:
            self._tel.metrics.inc("mpi.collectives", op=label, rank=self.rank)
        api = _COLLECTIVE_API.get(label)
        if api is not None:
            self._profile(
                api, host_us=(self._vtime - entered) * 1e6 + _host_us(api)
            )
        return result

    def _tree_cost(self, nbytes: int) -> float:
        if self.size == 1:
            return 0.0
        stages = math.ceil(math.log2(self.size))
        ref_a, ref_b = self.stack_of(0), self.stack_of(min(1, self.size - 1))
        per_stage = self._engine.p2p_transfer_time(ref_a, ref_b, max(nbytes, 1))
        return stages * per_stage

    def Barrier(self) -> None:
        self._collective(
            None, lambda values: (None, self._tree_cost(8)), label="barrier"
        )

    def Allreduce(self, array: np.ndarray, op: str = SUM) -> np.ndarray:
        array = np.asarray(array)
        try:
            reducer = _OPS[op]
        except KeyError:
            raise MPIError(f"unknown reduction op {op!r}") from None

        def finish(values: dict[int, np.ndarray]):
            stacked = np.stack([values[r] for r in sorted(values)])
            return reducer(stacked, axis=0), 2 * self._tree_cost(array.nbytes)

        return self._collective(array.copy(), finish, label="allreduce")  # type: ignore[return-value]

    def Bcast(self, array: np.ndarray | None, root: int = 0) -> np.ndarray:
        self._check_rank(root)

        def finish(values: dict[int, object]):
            payload = values[root]
            if payload is None:
                raise MPIError(f"root {root} broadcast None")
            return payload, self._tree_cost(np.asarray(payload).nbytes)

        value = array.copy() if (self.rank == root and array is not None) else None
        out = self._collective(value, finish, label="bcast")
        return np.asarray(out)

    def Gather(self, array: np.ndarray, root: int = 0) -> list[np.ndarray] | None:
        self._check_rank(root)

        def finish(values: dict[int, np.ndarray]):
            ordered = [values[r] for r in sorted(values)]
            return ordered, self._tree_cost(array.nbytes)

        out = self._collective(np.asarray(array).copy(), finish, label="gather")
        return out if self.rank == root else None  # type: ignore[return-value]

    def Allgather(self, array: np.ndarray) -> list[np.ndarray]:
        def finish(values: dict[int, np.ndarray]):
            ordered = [values[r] for r in sorted(values)]
            return ordered, 2 * self._tree_cost(array.nbytes)

        return self._collective(np.asarray(array).copy(), finish, label="allgather")  # type: ignore


class SimMPI:
    """Launches an SPMD function across the node's ranks.

    ``n_ranks`` defaults to one rank per stack (explicit scaling); the
    rank-to-core/stack binding follows Section IV-A.
    """

    def __init__(
        self,
        engine: PerfEngine,
        n_ranks: int | None = None,
        *,
        timeout_s: float | None = None,
    ) -> None:
        self.engine = engine
        self.bindings = explicit_scaling_binding(engine.node, n_ranks)
        if timeout_s is None and engine.faults is not None:
            # Fault plans with hang events shorten the deadlock watchdog
            # so a hung rank surfaces in seconds, not minutes.
            timeout_s = engine.faults.plan.mpi_timeout_s
        self.timeout_s = timeout_s

    @property
    def size(self) -> int:
        return len(self.bindings)

    def run(self, fn: Callable[[Communicator], object]) -> list[object]:
        """Run ``fn(comm)`` on every rank; returns per-rank results.

        If any rank raises, the shared context is *poisoned*: every rank
        blocked in a wait fails immediately instead of sitting out its
        timeout, and the first failure is re-raised with a
        ``failing_rank`` attribute identifying the culprit.
        """
        ctx = _Context(self.size, self.timeout_s)
        results: list[object] = [None] * self.size
        errors: list[BaseException | None] = [None] * self.size
        faults = self.engine.faults
        hang_rank = (
            faults.mpi_hang_rank(self.size) if faults is not None else None
        )

        def worker(rank: int) -> None:
            comm = Communicator(
                ctx, self.engine, self.bindings[rank], self.bindings
            )
            try:
                if rank == hang_rank:
                    _hang(ctx, rank)
                results[rank] = fn(comm)
            except BaseException as exc:  # noqa: BLE001 - reraised below
                errors[rank] = exc
                ctx.set_poison(rank, exc)
                tel = self.engine.telemetry
                if tel is not None:
                    poisoned = getattr(exc, "poisoned", False)
                    tel.instant_fault(
                        f"rank {rank} "
                        + ("abandoned (peer failed)" if poisoned else "failed"),
                        lane=tel.rank_lane(rank),
                        ts_us=comm.now * 1e6,
                        kind="mpi-poisoned" if poisoned else "mpi-abort",
                        error=type(exc).__name__,
                    )

        def _hang(ctx: _Context, rank: int) -> None:
            # An injected hang: the rank goes silent, then reports itself
            # at half the watchdog — before its peers' waits expire — so
            # the hang (not the peers' timeouts) is the root cause that
            # poisons the job.
            with ctx.cond:
                ctx.cond.wait_for(
                    lambda: ctx.poison is not None,
                    timeout=ctx.timeout_s / 2,
                )
            raise MPIError(f"rank {rank} hung (injected fault)")

        threads = [
            threading.Thread(target=worker, args=(r,), daemon=True)
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=ctx.timeout_s * 2)
        primary = self._primary_error(errors)
        if primary is not None:
            raise primary
        hung = [i for i, t in enumerate(threads) if t.is_alive()]
        if hung:
            raise MPIError(f"ranks {hung} did not terminate (deadlock?)")
        return results

    @staticmethod
    def _primary_error(
        errors: Sequence[BaseException | None],
    ) -> BaseException | None:
        """The error to re-raise: prefer the root cause over fallout.

        Poison-induced errors (ranks that bailed because *another* rank
        failed) are fallout; the first non-poisoned error is the root
        cause.  Either way the chosen exception carries ``failing_rank``.
        """
        first: tuple[int, BaseException] | None = None
        for rank, exc in enumerate(errors):
            if exc is None:
                continue
            if first is None:
                first = (rank, exc)
            if not getattr(exc, "poisoned", False):
                first = (rank, exc)
                break
        if first is None:
            return None
        rank, exc = first
        if not hasattr(exc, "failing_rank"):
            try:
                exc.failing_rank = rank  # type: ignore[attr-defined]
            except AttributeError:
                pass
        return exc
