"""Deprecated location: tracing moved to :mod:`repro.telemetry`.

The original standalone ``Tracer``/``TracedQueue`` pair has been
absorbed by the telemetry subsystem: :class:`repro.telemetry.Tracer`
fixes the non-deterministic lane ordering of the old exporter (lanes now
sort by registered key — rank, then queue index — instead of
first-event order, and ``thread_name`` metadata labels each lane), and
:class:`repro.runtime.sycl.SyclQueue` records its own events whenever
the engine carries a :class:`repro.telemetry.Telemetry` session, so the
wrapper queue is gone.

This module re-exports the new types so existing imports keep working::

    from repro.runtime.trace import Tracer, TraceEvent   # still fine

New code should import from :mod:`repro.telemetry` directly.
"""

from ..telemetry.trace import COMPLETE, INSTANT, Lane, TraceEvent, Tracer

__all__ = ["COMPLETE", "INSTANT", "Lane", "TraceEvent", "Tracer"]
