"""Execution tracing: a Chrome-trace-format timeline of simulated work.

Profiling on the real systems (unitrace / rocprof / nsys) produces
per-queue timelines; this module gives the simulated runs the same
observability.  A :class:`Tracer` collects :class:`TraceEvent` records
from SYCL queues and MPI ranks and exports the standard
``chrome://tracing`` JSON (``trace_event`` format, "X" complete events),
loadable in Perfetto.

Usage::

    tracer = Tracer()
    queue = TracedQueue(runtime.queue(), tracer, lane="gpu 0.0")
    queue.memcpy(dst, src)
    tracer.export_json()
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .sycl import SyclEvent, SyclQueue, UsmAllocation

__all__ = ["TraceEvent", "Tracer", "TracedQueue"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One complete ("X") event on the simulated timeline."""

    name: str
    lane: str
    start_us: float
    duration_us: float
    category: str = "kernel"
    args: dict = field(default_factory=dict)

    def to_chrome(self, lane_ids: dict[str, int]) -> dict:
        return {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "ts": self.start_us,
            "dur": self.duration_us,
            "pid": 0,
            "tid": lane_ids[self.lane],
            "args": dict(self.args),
        }


class Tracer:
    """Collects trace events and exports chrome://tracing JSON."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        if event.duration_us < 0:
            raise ValueError("negative event duration")
        self._events.append(event)

    def record_sycl(
        self,
        name: str,
        lane: str,
        event: SyclEvent,
        category: str = "kernel",
        **args,
    ) -> None:
        """Record a SYCL profiling event (timestamps are simulated ns)."""
        self.record(
            TraceEvent(
                name=name,
                lane=lane,
                start_us=event.start_ns / 1e3,
                duration_us=event.duration_ns / 1e3,
                category=category,
                args=args,
            )
        )

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def lanes(self) -> list[str]:
        seen: list[str] = []
        for e in self._events:
            if e.lane not in seen:
                seen.append(e.lane)
        return seen

    def total_busy_us(self, lane: str) -> float:
        return sum(e.duration_us for e in self._events if e.lane == lane)

    def span_us(self) -> float:
        """End-to-end simulated span across all lanes."""
        if not self._events:
            return 0.0
        start = min(e.start_us for e in self._events)
        end = max(e.start_us + e.duration_us for e in self._events)
        return end - start

    def export_json(self) -> str:
        """The chrome://tracing `traceEvents` document."""
        lane_ids = {lane: i for i, lane in enumerate(self.lanes())}
        doc = {
            "traceEvents": [e.to_chrome(lane_ids) for e in self._events],
            "displayTimeUnit": "ms",
        }
        return json.dumps(doc, indent=2)


class TracedQueue:
    """A SYCL queue wrapper that records every operation.

    Wraps (not subclasses) so the queue's own API stays authoritative;
    only the operations the benchmarks use are instrumented.
    """

    def __init__(self, queue: SyclQueue, tracer: Tracer, lane: str) -> None:
        self.queue = queue
        self.tracer = tracer
        self.lane = lane

    def memcpy(
        self, dst: UsmAllocation, src: UsmAllocation, nbytes: int | None = None, **kw
    ) -> SyclEvent:
        event = self.queue.memcpy(dst, src, nbytes, **kw)
        moved = nbytes if nbytes is not None else min(dst.nbytes, src.nbytes)
        self.tracer.record_sycl(
            f"memcpy[{src.kind.value}->{dst.kind.value}]",
            self.lane,
            event,
            category="transfer",
            nbytes=moved,
        )
        return event

    def submit(self, spec, func=None, *args, **kw) -> SyclEvent:
        event = self.queue.submit(spec, func, *args, **kw)
        self.tracer.record_sycl(
            spec.name, self.lane, event, category="kernel", flops=spec.flops
        )
        return event

    def __getattr__(self, name: str):
        return getattr(self.queue, name)
