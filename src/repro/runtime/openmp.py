"""An OpenMP-target-offload-like facade.

The paper's peak-flops and triad microbenchmarks, plus miniQMC, RI-MP2
and OpenMC, are written in OpenMP target offload.  This facade maps the
``target teams distribute parallel for`` idiom onto the simulated device:
the loop body executes vectorised on the host (NumPy) for functional
results, while elapsed time comes from the engine's roofline for the
declared workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..hw.ids import StackRef
from ..sim.engine import PerfEngine
from ..sim.kernel import KernelSpec

__all__ = ["OmpTargetRegion", "OpenMPRuntime"]


@dataclass(frozen=True, slots=True)
class OmpTargetRegion:
    """Result of one offloaded region: wall time + mapping traffic."""

    kernel_s: float
    map_to_s: float
    map_from_s: float

    @property
    def total_s(self) -> float:
        return self.kernel_s + self.map_to_s + self.map_from_s


class OpenMPRuntime:
    """One device's OpenMP offload context."""

    def __init__(self, engine: PerfEngine, device: StackRef | None = None) -> None:
        self.engine = engine
        self.device = device or engine.node.stacks()[0]
        self._rep = 0

    def set_repetition(self, rep: int) -> None:
        self._rep = rep

    def target_teams_loop(
        self,
        spec: KernelSpec,
        body: Callable[[], None] | None = None,
        *,
        map_to_bytes: float = 0.0,
        map_from_bytes: float = 0.0,
        n_stacks: int = 1,
    ) -> OmpTargetRegion:
        """``#pragma omp target teams distribute parallel for``.

        ``map_to_bytes`` / ``map_from_bytes`` model ``map(to:)`` /
        ``map(from:)`` clauses — explicit H2D/D2H traffic around the
        kernel.
        """
        eng = self.engine
        map_to_s = (
            eng.host_transfer_time(self.device, map_to_bytes, "h2d", rep=self._rep)
            if map_to_bytes
            else 0.0
        )
        map_from_s = (
            eng.host_transfer_time(self.device, map_from_bytes, "d2h", rep=self._rep)
            if map_from_bytes
            else 0.0
        )
        if body is not None:
            body()
        kernel_s = eng.kernel_time_s(spec, n_stacks, rep=self._rep)
        return OmpTargetRegion(kernel_s, map_to_s, map_from_s)

    def parallel_for(self, n: int, fn: Callable[[np.ndarray], None]) -> None:
        """Host-side ``parallel for``: vectorised over the index space."""
        fn(np.arange(n))
