"""Programming-model substrates: Level-Zero, SYCL, OpenMP, MPI, toolchain."""

from .binding import RankBinding, explicit_scaling_binding, ranks_per_socket
from .mpi import MAX, MIN, SUM, Communicator, Request, SimMPI
from .openmp import OmpTargetRegion, OpenMPRuntime
from .sycl import (
    SyclDevice,
    SyclEvent,
    SyclQueue,
    SyclRuntime,
    UsmAllocation,
    UsmKind,
)
from .toolchain import Binary, Toolchain, toolchain_for
from .ze import COMPOSITE, FLAT, ZeDevice, ZeDriver, parse_affinity_mask

__all__ = [
    "RankBinding",
    "explicit_scaling_binding",
    "ranks_per_socket",
    "MAX",
    "MIN",
    "SUM",
    "Communicator",
    "Request",
    "SimMPI",
    "OmpTargetRegion",
    "OpenMPRuntime",
    "SyclDevice",
    "SyclEvent",
    "SyclQueue",
    "SyclRuntime",
    "UsmAllocation",
    "UsmKind",
    "Binary",
    "Toolchain",
    "toolchain_for",
    "COMPOSITE",
    "FLAT",
    "ZeDevice",
    "ZeDriver",
    "parse_affinity_mask",
]
