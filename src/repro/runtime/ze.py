"""Level-Zero-style device discovery and affinity masking.

The paper controls which PVC stacks each MPI rank sees with the
``ZE_AFFINITY_MASK`` environment variable ("similar to
CUDA_VISIBLE_DEVICES", Section IV-A).  This module reproduces those
semantics over a :class:`repro.hw.node.Node`:

* mask entries are either whole cards (``"0"``) or single stacks
  (``"0.1"``); a comma-separated list selects several;
* selected devices are renumbered densely in mask order, exactly like the
  real driver;
* ``ZE_FLAT_DEVICE_HIERARCHY`` chooses whether each *stack* (FLAT) or each
  *card* (COMPOSITE) appears as a root device.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AffinityError, DeviceLostError
from ..hw.ids import StackRef
from ..hw.node import Node

__all__ = ["ZeDriver", "ZeDevice", "parse_affinity_mask", "FLAT", "COMPOSITE"]

FLAT = "FLAT"
COMPOSITE = "COMPOSITE"


@dataclass(frozen=True, slots=True)
class ZeDevice:
    """A root device as exposed by the driver.

    In FLAT hierarchy each device wraps one stack; in COMPOSITE it wraps a
    whole card and exposes its stacks as sub-devices.
    """

    index: int
    stacks: tuple[StackRef, ...]

    @property
    def n_sub_devices(self) -> int:
        return len(self.stacks)

    def sub_device(self, i: int) -> StackRef:
        try:
            return self.stacks[i]
        except IndexError:
            raise AffinityError(
                f"device {self.index} has no sub-device {i}"
            ) from None


def parse_affinity_mask(mask: str, node: Node) -> list[StackRef]:
    """Expand a ``ZE_AFFINITY_MASK`` string to stack references.

    >>> # "0,1.1" -> both stacks of card 0, then stack 1 of card 1
    """
    out: list[StackRef] = []
    n_sub = node.card.n_devices
    for entry in mask.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(".")
        try:
            card = int(parts[0])
        except ValueError:
            raise AffinityError(f"bad mask entry {entry!r}") from None
        if not (0 <= card < node.n_cards):
            raise AffinityError(f"mask references missing card {card}")
        if len(parts) == 1:
            out.extend(StackRef(card, s) for s in range(n_sub))
        elif len(parts) == 2:
            try:
                stack = int(parts[1])
            except ValueError:
                raise AffinityError(f"bad mask entry {entry!r}") from None
            if not (0 <= stack < n_sub):
                raise AffinityError(
                    f"mask references missing stack {card}.{stack}"
                )
            out.append(StackRef(card, stack))
        else:
            raise AffinityError(f"bad mask entry {entry!r}")
    if not out:
        raise AffinityError(f"mask selects no devices: {mask!r}")
    seen = set()
    unique = []
    for ref in out:
        if ref not in seen:
            seen.add(ref)
            unique.append(ref)
    return unique


class ZeDriver:
    """Device discovery for one node under an optional affinity mask."""

    def __init__(
        self,
        node: Node,
        affinity_mask: str | None = None,
        hierarchy: str = FLAT,
        *,
        profiler=None,
    ) -> None:
        if hierarchy not in (FLAT, COMPOSITE):
            raise AffinityError(f"bad hierarchy {hierarchy!r}")
        self.node = node
        self.hierarchy = hierarchy
        self._profiler = profiler
        if profiler is not None:
            from ..profiler.core import ZE_DRIVER_POINTS

            profiler.register("ze", *ZE_DRIVER_POINTS)
            profiler.record("zeInit", "ze")
            profiler.record("zeDeviceGet", "ze")
        if affinity_mask is None:
            selected = node.stacks()
        else:
            selected = parse_affinity_mask(affinity_mask, node)
        # Like the real driver, stacks that dropped off the bus simply do
        # not enumerate; callers see the survivors, densely renumbered.
        self._visible = [r for r in selected if not node.fabric.is_down(r)]
        self.excluded: list[StackRef] = [
            r for r in selected if node.fabric.is_down(r)
        ]
        if not self._visible:
            raise DeviceLostError(
                "no devices enumerate: "
                f"{', '.join(str(r) for r in self.excluded)} lost"
            )

    @property
    def visible_stacks(self) -> list[StackRef]:
        return list(self._visible)

    def devices(self) -> list[ZeDevice]:
        """Root devices in mask order, renumbered densely."""
        if self._profiler is not None:
            self._profiler.record("zeDeviceGetSubDevices", "ze")
        if self.hierarchy == FLAT:
            return [
                ZeDevice(index=i, stacks=(ref,))
                for i, ref in enumerate(self._visible)
            ]
        # COMPOSITE: group visible stacks by card, preserving order.
        by_card: dict[int, list[StackRef]] = {}
        order: list[int] = []
        for ref in self._visible:
            if ref.card not in by_card:
                order.append(ref.card)
            by_card.setdefault(ref.card, []).append(ref)
        return [
            ZeDevice(index=i, stacks=tuple(by_card[card]))
            for i, card in enumerate(order)
        ]

    def device_count(self) -> int:
        return len(self.devices())
