"""Per-system software toolchain model.

Section III fixes the software stack per system (oneAPI 2024.1 on the PVC
machines, NVHPC 24.1 + CUDA 12.3 on JLSE-H100, ROCm 6.1 on JLSE-MI250),
and Section V-B.3 reports one concrete toolchain failure: *"The
mini-GAMESS MI250 FOM results are absent since it failed to build with
the AMD Fortran compiler."*

This module reproduces that: building a (language, programming-model)
combination on a system either returns a :class:`Binary` or raises
:class:`repro.errors.BuildError` — and the ROCm Fortran+OpenMP-offload
combination fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BuildError
from ..hw.systems import System

__all__ = ["Toolchain", "Binary", "toolchain_for"]


@dataclass(frozen=True, slots=True)
class Binary:
    """A successfully 'built' application."""

    app: str
    system: str
    language: str
    programming_model: str
    compiler: str


@dataclass(frozen=True, slots=True)
class Toolchain:
    """The compilers available on one system."""

    system: str
    name: str
    c_cxx_compiler: str
    fortran_compiler: str | None
    #: (language, model) combinations known to fail on this stack.
    broken: frozenset[tuple[str, str]] = frozenset()

    def build(self, app: str, language: str, programming_model: str) -> Binary:
        language = language.lower()
        model = programming_model.lower()
        if language == "fortran" and self.fortran_compiler is None:
            raise BuildError(
                f"{self.name}: no Fortran compiler available for {app}"
            )
        if (language, model) in self.broken:
            compiler = (
                self.fortran_compiler
                if language == "fortran"
                else self.c_cxx_compiler
            )
            raise BuildError(
                f"{app} failed to build with {compiler} "
                f"({language}/{programming_model} is broken on {self.system})"
            )
        compiler = (
            self.fortran_compiler if language == "fortran" else self.c_cxx_compiler
        )
        assert compiler is not None
        return Binary(
            app=app,
            system=self.system,
            language=language,
            programming_model=programming_model,
            compiler=compiler,
        )


_TOOLCHAINS: dict[str, Toolchain] = {
    "aurora": Toolchain(
        system="aurora",
        name="Intel oneAPI 2024.1",
        c_cxx_compiler="icpx",
        fortran_compiler="ifx",
    ),
    "dawn": Toolchain(
        system="dawn",
        name="Intel oneAPI 2024.1",
        c_cxx_compiler="icpx",
        fortran_compiler="ifx",
    ),
    "jlse-h100": Toolchain(
        system="jlse-h100",
        name="NVHPC 24.1 + CUDA 12.3.0",
        c_cxx_compiler="nvc++",
        fortran_compiler="nvfortran",
    ),
    "jlse-mi250": Toolchain(
        system="jlse-mi250",
        name="ROCm 6.1.0",
        c_cxx_compiler="hipcc",
        fortran_compiler="amdflang",
        # Section V-B.3: GAMESS RI-MP2 (Fortran + OpenMP offload) fails.
        broken=frozenset({("fortran", "openmp")}),
    ),
}


def toolchain_for(system: System | str) -> Toolchain:
    """The software stack of a system (Section III's per-system list)."""
    key = system.calibration_key if isinstance(system, System) else system
    try:
        return _TOOLCHAINS[key]
    except KeyError:
        raise BuildError(f"no toolchain registered for {key!r}") from None
