"""A SYCL-like runtime over the simulated node.

The paper's SYCL benchmarks use queues, USM allocations
(``sycl::malloc_host`` — "internally implemented by a call to
ze_malloc_host(), an equivalent to Nvidia pinned memory", Section
IV-A.3) and profiling events.  This module provides that surface:

* :class:`SyclQueue` — in-order queue on one logical device, with a
  simulated timeline; ``memcpy`` and ``submit`` return profiling
  :class:`SyclEvent`\\ s whose durations come from the performance engine,
  while the *data* really moves / the kernel function really executes
  (NumPy), so functional results are exact.
* USM: ``malloc_device`` / ``malloc_host`` / ``malloc_shared`` returning
  :class:`UsmAllocation` buffers tagged with their location.

This keeps the benchmark code structurally identical to the paper's SYCL
ports while remaining a pure-Python simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import AllocationError, ConfigurationError
from ..hw.ids import StackRef
from ..sim.engine import PerfEngine
from ..sim.kernel import KernelSpec
from .ze import FLAT, ZeDriver

__all__ = [
    "UsmKind",
    "UsmAllocation",
    "SyclDevice",
    "SyclEvent",
    "SyclQueue",
    "SyclRuntime",
]


class UsmKind(enum.Enum):
    """Unified-shared-memory allocation kinds (SYCL USM)."""

    HOST = "host"
    DEVICE = "device"
    SHARED = "shared"


@dataclass
class UsmAllocation:
    """A unified-shared-memory allocation.

    ``buffer`` is the backing NumPy byte array (functional payload);
    ``device`` is the owning stack for device/shared allocations.
    """

    kind: UsmKind
    nbytes: int
    buffer: np.ndarray
    device: StackRef | None = None
    freed: bool = False

    def view(self, dtype) -> np.ndarray:
        """Typed view of the raw bytes."""
        self._check_live()
        return self.buffer.view(dtype)

    def _check_live(self) -> None:
        if self.freed:
            raise AllocationError("use after free")

    def fill(self, value: float, dtype=np.float64) -> None:
        self.view(dtype)[:] = value


@dataclass(frozen=True, slots=True)
class SyclDevice:
    """One logical device visible to the runtime."""

    index: int
    ref: StackRef
    name: str
    max_compute_units: int
    global_mem_bytes: int

    def info(self) -> dict:
        return {
            "name": self.name,
            "max_compute_units": self.max_compute_units,
            "global_mem_size": self.global_mem_bytes,
        }


class SyclEvent:
    """A profiling event: submit/start/end timestamps in simulated ns."""

    def __init__(
        self, submit_ns: int, start_ns: int, end_ns: int, *, profiler=None
    ) -> None:
        if not (submit_ns <= start_ns <= end_ns):
            raise ConfigurationError("event timestamps must be ordered")
        self.submit_ns = submit_ns
        self.start_ns = start_ns
        self.end_ns = end_ns
        self._profiler = profiler

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns * 1e-9

    def profiling_info(self) -> dict[str, int]:
        if self._profiler is not None:
            self._profiler.record("sycl::event::get_profiling_info", "sycl")
        return {
            "command_submit": self.submit_ns,
            "command_start": self.start_ns,
            "command_end": self.end_ns,
        }


class SyclQueue:
    """An in-order queue on one device with a simulated clock.

    When the owning engine carries a telemetry session, every timed
    operation is also recorded on the queue's ``gpu C.S`` trace lane
    (superseding the old standalone ``TracedQueue`` wrapper), and
    submitting to a device lost to fault injection raises a retryable
    :class:`~repro.errors.DeviceLostError`.
    """

    def __init__(
        self,
        engine: PerfEngine,
        device: SyclDevice,
        *,
        enable_profiling: bool = True,
    ) -> None:
        self.engine = engine
        self.device = device
        self.enable_profiling = enable_profiling
        self._now_ns: int = 0
        self._rep: int = 0
        self._events: list[SyclEvent] = []
        self.lane: str | None = None
        self._profiler = None
        self._stream = ""
        if engine.telemetry is not None:
            self.lane = engine.telemetry.gpu_lane(device.ref)
            self._profiler = getattr(engine.telemetry, "profiler", None)
        if self._profiler is not None:
            from ..profiler.core import SYCL_POINTS, ZE_QUEUE_POINTS

            self._profiler.register("ze", *ZE_QUEUE_POINTS)
            self._profiler.register("sycl", *SYCL_POINTS)
            self._stream = self._profiler.stream(
                f"{engine.system.name}:{device.ref}"
            )
            self._profiler.record(
                "zeCommandQueueCreate",
                "ze",
                stream=self._stream,
                clock_us=self._now_ns / 1e3,
            )

    # -- clock ------------------------------------------------------------

    @property
    def now_ns(self) -> int:
        return self._now_ns

    def set_repetition(self, rep: int) -> None:
        """Select the noise-model repetition index for subsequent work."""
        self._rep = rep

    def _check_device(self) -> None:
        """Queues on a stack lost mid-run must fail retryably."""
        if self.engine.faults is not None:
            self.engine.faults.check_stack(self.device.ref)

    def _advance(
        self,
        seconds: float,
        name: str | None = None,
        category: str = "kernel",
        **args,
    ) -> SyclEvent:
        submit = self._now_ns
        start = submit  # in-order queue, idle device: starts immediately
        end = start + max(1, round(seconds * 1e9))
        self._now_ns = end
        ev = SyclEvent(submit, start, end, profiler=self._profiler)
        self._events.append(ev)
        tel = self.engine.telemetry
        if tel is not None and self.lane is not None and name is not None:
            tel.tracer.complete(
                name,
                self.lane,
                duration_us=ev.duration_ns / 1e3,
                start_us=start / 1e3,
                category=category,
                **args,
            )
        return ev

    # -- USM -------------------------------------------------------------

    def _alloc(self, kind: UsmKind, nbytes: int) -> UsmAllocation:
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive: {nbytes}")
        if self.engine.faults is not None:
            self.engine.faults.on_alloc(kind.value, nbytes)
        if kind in (UsmKind.DEVICE, UsmKind.SHARED):
            if nbytes > self.engine.device.hbm_capacity_bytes:
                raise AllocationError(
                    f"{nbytes} B exceeds device HBM "
                    f"({self.engine.device.hbm_capacity_bytes} B)"
                )
        if self._profiler is not None:
            self._profiler.record(f"sycl::malloc_{kind.value}", "sycl")
        return UsmAllocation(
            kind=kind,
            nbytes=nbytes,
            buffer=np.zeros(nbytes, dtype=np.uint8),
            device=self.device.ref if kind is not UsmKind.HOST else None,
        )

    def malloc_device(self, nbytes: int) -> UsmAllocation:
        return self._alloc(UsmKind.DEVICE, nbytes)

    def malloc_host(self, nbytes: int) -> UsmAllocation:
        """Pinned host memory (the paper's ``sycl::malloc_host``)."""
        return self._alloc(UsmKind.HOST, nbytes)

    def malloc_shared(self, nbytes: int) -> UsmAllocation:
        return self._alloc(UsmKind.SHARED, nbytes)

    def free(self, alloc: UsmAllocation) -> None:
        alloc._check_live()
        alloc.freed = True
        if self._profiler is not None:
            self._profiler.record("sycl::free", "sycl")

    # -- operations -------------------------------------------------------

    def memcpy(
        self,
        dst: UsmAllocation,
        src: UsmAllocation,
        nbytes: int | None = None,
        *,
        timed_nbytes: int | None = None,
    ) -> SyclEvent:
        """Copy between USM allocations; time depends on the location pair.

        ``timed_nbytes`` overrides the size used for the simulated timing
        (benchmarks declare the paper's 500 MB messages while carrying a
        small functional payload to bound host memory use).
        """
        dst._check_live()
        src._check_live()
        if nbytes is None:
            nbytes = min(dst.nbytes, src.nbytes)
        if nbytes > src.nbytes or nbytes > dst.nbytes:
            raise AllocationError("memcpy overruns an allocation")
        if timed_nbytes is not None and timed_nbytes < nbytes:
            raise AllocationError("timed_nbytes smaller than the payload")
        self._check_device()
        seconds = self._memcpy_seconds(dst, src, timed_nbytes or nbytes)
        dst.buffer[:nbytes] = src.buffer[:nbytes]
        op = f"memcpy[{src.kind.value}->{dst.kind.value}]"
        ev = self._advance(
            seconds, op, category="transfer", nbytes=timed_nbytes or nbytes
        )
        if self._profiler is not None:
            self._profiler.record(
                "zeCommandListAppendMemoryCopy",
                "ze",
                device_us=ev.duration_ns / 1e3,
                bytes_moved=float(timed_nbytes or nbytes),
                op=op,
                stream=self._stream,
                clock_us=self._now_ns / 1e3,
            )
        return ev

    def _memcpy_seconds(
        self, dst: UsmAllocation, src: UsmAllocation, nbytes: int
    ) -> float:
        eng = self.engine
        rep = self._rep
        src_dev = src.kind is not UsmKind.HOST
        dst_dev = dst.kind is not UsmKind.HOST
        if not src_dev and not dst_dev:
            # host-to-host over DDR: read + write.
            bw = eng.node.sockets[0].ddr_peak_bw / 2
            return nbytes / bw
        if src_dev and dst_dev:
            if src.device == dst.device:
                # on-device copy: read + write through HBM.
                return 2 * nbytes / eng.stream_bw(1)
            return eng.p2p_transfer_time(src.device, dst.device, nbytes, rep=rep)
        direction = "h2d" if dst_dev else "d2h"
        ref = dst.device if dst_dev else src.device
        assert ref is not None
        return eng.host_transfer_time(ref, nbytes, direction, rep=rep)

    def memcpy_bidirectional(
        self,
        d2h_dst: UsmAllocation,
        d2h_src: UsmAllocation,
        h2d_dst: UsmAllocation,
        h2d_src: UsmAllocation,
        nbytes: int,
        *,
        timed_nbytes: int | None = None,
    ) -> SyclEvent:
        """Simultaneous H2D + D2H of *nbytes* each (the paper's 1 GB
        bidirectional PCIe case).  Total time = 2*nbytes / bidir rate."""
        for a in (d2h_dst, d2h_src, h2d_dst, h2d_src):
            a._check_live()
        ref = h2d_dst.device
        assert ref is not None
        self._check_device()
        bw = self.engine.transfers.host_device_bw(ref, "bidir")
        seconds = self.engine.noise.apply(
            2 * (timed_nbytes or nbytes) / bw,
            f"{self.engine.system.name}:pcie:bidir:{ref}",
            self._rep,
        )
        d2h_dst.buffer[:nbytes] = d2h_src.buffer[:nbytes]
        h2d_dst.buffer[:nbytes] = h2d_src.buffer[:nbytes]
        ev = self._advance(
            seconds,
            "memcpy[bidir]",
            category="transfer",
            nbytes=2 * (timed_nbytes or nbytes),
        )
        if self._profiler is not None:
            self._profiler.record(
                "zeCommandListAppendMemoryCopy",
                "ze",
                device_us=ev.duration_ns / 1e3,
                bytes_moved=2.0 * (timed_nbytes or nbytes),
                op="memcpy[bidir]",
                stream=self._stream,
                clock_us=self._now_ns / 1e3,
            )
        return ev

    def submit(
        self,
        spec: KernelSpec,
        func: Callable[..., None] | None = None,
        *args,
        n_stacks: int = 1,
    ) -> SyclEvent:
        """Run a kernel: *func(args)* executes functionally (if given);
        the event duration comes from the engine's roofline for *spec*."""
        self._check_device()
        seconds = self.engine.kernel_time_s(spec, n_stacks, rep=self._rep)
        if func is not None:
            func(*args)
        ev = self._advance(
            seconds, spec.name, category="kernel", flops=spec.flops
        )
        if self._profiler is not None:
            self._profiler.record(
                "zeCommandListAppendLaunchKernel", "ze", op=spec.name
            )
            self._profiler.record(
                "zeCommandQueueExecuteCommandLists",
                "ze",
                device_us=ev.duration_ns / 1e3,
                op=spec.name,
                stream=self._stream,
                clock_us=self._now_ns / 1e3,
            )
        return ev

    def wait(self) -> None:
        """In-order queue: everything submitted is already retired."""
        if self._profiler is not None:
            self._profiler.record(
                "zeCommandQueueSynchronize",
                "ze",
                stream=self._stream,
                clock_us=self._now_ns / 1e3,
            )

    @property
    def events(self) -> list[SyclEvent]:
        return list(self._events)


class SyclRuntime:
    """Platform + device discovery, honouring ``ZE_AFFINITY_MASK``."""

    def __init__(
        self,
        engine: PerfEngine,
        affinity_mask: str | None = None,
        hierarchy: str = FLAT,
    ) -> None:
        self.engine = engine
        profiler = (
            getattr(engine.telemetry, "profiler", None)
            if engine.telemetry is not None
            else None
        )
        self.driver = ZeDriver(
            engine.node, affinity_mask, hierarchy, profiler=profiler
        )
        if self.driver.excluded and engine.faults is not None:
            engine.faults.note(
                "SYCL runtime skipped lost device(s): "
                + ", ".join(str(r) for r in self.driver.excluded)
            )

    def devices(self) -> list[SyclDevice]:
        model = self.engine.device
        cu = model.spec.active_xe_cores if model.spec is not None else 0
        return [
            SyclDevice(
                index=zed.index,
                ref=zed.stacks[0],
                name=model.name,
                max_compute_units=cu or 1,
                global_mem_bytes=model.hbm_capacity_bytes * zed.n_sub_devices,
            )
            for zed in self.driver.devices()
        ]

    def default_device(self) -> SyclDevice:
        return self.devices()[0]

    def queue(
        self, device: SyclDevice | None = None, *, enable_profiling: bool = True
    ) -> SyclQueue:
        if device is None:
            device = self.default_device()
        return SyclQueue(self.engine, device, enable_profiling=enable_profiling)
