"""Rank-to-CPU-core and rank-to-stack binding (Section IV-A).

The paper's protocol: *"binding the MPI ranks to the CPU closest to the
GPU ensures data transfer doesn't happen between CPU sockets.  For
example, Aurora uses CPU cores 0 and 52 (the first core from each CPU
socket) for OS kernel threads.  Therefore, rank 0 is bound to CPU core 1
and PVC 0 Stack 0.  Each Stack is mapped to one MPI rank."*

:func:`explicit_scaling_binding` reproduces this: ranks enumerate stacks
card-major, each rank binds to the first free non-reserved core of its
card's socket.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..hw.ids import StackRef
from ..hw.node import Node

__all__ = ["RankBinding", "explicit_scaling_binding", "ranks_per_socket"]


@dataclass(frozen=True, slots=True)
class RankBinding:
    """Where one MPI rank lives: its stack, socket, and pinned CPU core."""

    rank: int
    stack: StackRef
    socket: int
    cpu_core: int


def explicit_scaling_binding(
    node: Node, n_ranks: int | None = None
) -> list[RankBinding]:
    """One rank per stack, bound to the closest socket's next free core.

    Cores are numbered globally with socket 0 owning ``[0, cores)`` and
    socket 1 owning ``[cores, 2*cores)``; the first ``os_reserved_cores``
    of each socket are skipped (core 0 and core 52 on Aurora).
    """
    stacks = node.stacks()
    if n_ranks is None:
        n_ranks = len(stacks)
    if not (1 <= n_ranks <= len(stacks)):
        raise ConfigurationError(
            f"n_ranks must be in [1, {len(stacks)}], got {n_ranks}"
        )
    core_base = [0]
    for sock in node.sockets[:-1]:
        core_base.append(core_base[-1] + sock.cores)
    next_free = [
        core_base[i] + node.sockets[i].os_reserved_cores
        for i in range(len(node.sockets))
    ]
    bindings: list[RankBinding] = []
    for rank in range(n_ranks):
        ref = stacks[rank]
        socket = node.socket_of(ref)
        limit = core_base[socket] + node.sockets[socket].cores
        core = next_free[socket]
        if core >= limit:
            raise ConfigurationError(
                f"socket {socket} has no free core for rank {rank}"
            )
        next_free[socket] += 1
        bindings.append(
            RankBinding(rank=rank, stack=ref, socket=socket, cpu_core=core)
        )
    return bindings


def ranks_per_socket(bindings: list[RankBinding], n_sockets: int) -> list[int]:
    """How many ranks share each socket (drives the congestion models)."""
    counts = [0] * n_sockets
    for b in bindings:
        counts[b.socket] += 1
    return counts
