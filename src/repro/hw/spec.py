"""Intel Data Center GPU Max 1550 ("Ponte Vecchio") architecture model.

Section II of the paper, bottom-up:

* the basic element is the **Xe-Core**: 8 vector engines + 8 matrix engines
  and a 512 KB register file;
* the vector engine is 512-bit wide (8-wide FP64), performs two FP64 FMAs
  per clock, so one Xe-Core retires ``8 engines x 8 SIMD x 2 FMA x 2 = 256``
  FP64 flops per clock (and, by design, the same FP32 throughput);
* the matrix engine is 4096-bit wide and supports only lower precisions;
* 16 Xe-Cores form a **Xe-Slice**; 4 slices form a **Xe-Stack** with its own
  192 MiB LLC and HBM2e stacks; 2 stacks form one Max 1550 card
  (128 Xe-Cores, 32768 FP64+FP32 flops per clock);
* only stack 0 carries the PCIe Gen5 host link; stack 1 reaches the host
  via the stack-to-stack interconnect (MDFI).

All quantities here are *specifications*; achieved performance is derived
by :mod:`repro.sim` from these plus the frequency model and calibrated
efficiencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.units import GB, KIB, MIB, TERA
from ..dtypes import ENGINE_MATRIX, ENGINE_VECTOR, Precision

__all__ = [
    "VectorEngine",
    "MatrixEngine",
    "XeCore",
    "XeSlice",
    "XeStack",
    "PVCCard",
    "PVC_MAX_CLOCK_HZ",
    "PVC_FP64_FMA_CLOCK_HZ",
]

#: Maximum GPU clock (Section II); sustained FP64 FMA clock under TDP
#: (Section IV-B.2: "the PVC operated at ~1.2GHz for FP64 and ~1.6GHz for
#: FP32 FMA operations").
PVC_MAX_CLOCK_HZ = 1.6e9
PVC_FP64_FMA_CLOCK_HZ = 1.2e9


@dataclass(frozen=True, slots=True)
class VectorEngine:
    """One 512-bit vector engine (8 FP64 lanes, dual-issue FMA)."""

    simd_bits: int = 512
    fmas_per_clock: int = 2  # two double-precision FMAs per clock

    def lanes(self, precision: Precision) -> int:
        """SIMD lanes for *precision*.

        PVC is specified with equal FP32 and FP64 throughput (Section
        IV-B.2 cites [17]), so both map to the 8-wide configuration the
        paper's peak formula uses; FP16 is not a vector-engine target in
        this suite.
        """
        if precision in (Precision.FP64, Precision.FP32):
            return self.simd_bits // 64
        raise ValueError(f"vector engine does not serve {precision}")

    def flops_per_clock(self, precision: Precision) -> int:
        """Flops per clock: lanes x FMAs-per-clock x 2 (an FMA is 2 flops)."""
        return self.lanes(precision) * self.fmas_per_clock * 2


@dataclass(frozen=True, slots=True)
class MatrixEngine:
    """One 4096-bit matrix (XMX) engine; lower precisions only.

    Ops-per-clock values reproduce the Max 1550 card specification at
    1.6 GHz: FP16/BF16 839 TFlop/s, TF32 419 TFlop/s, I8 1678 TOp/s per
    card (1024 engines), i.e. 512 / 512 / 256 / 1024 ops per engine-clock.
    """

    width_bits: int = 4096
    _OPS: dict = field(
        default_factory=lambda: {
            Precision.FP16: 512,
            Precision.BF16: 512,
            Precision.TF32: 256,
            Precision.I8: 1024,
        }
    )

    def ops_per_clock(self, precision: Precision) -> int:
        try:
            return self._OPS[precision]
        except KeyError:
            raise ValueError(f"matrix engine does not serve {precision}") from None


@dataclass(frozen=True, slots=True)
class XeCore:
    """Xe-Core: 8 vector + 8 matrix engines, 512 KB register file."""

    n_vector_engines: int = 8
    n_matrix_engines: int = 8
    register_file_bytes: int = 512 * 1024
    l1_cache_bytes: int = 512 * KIB  # Section IV-B.6 / Fig. 1
    vector_engine: VectorEngine = field(default_factory=VectorEngine)
    matrix_engine: MatrixEngine = field(default_factory=MatrixEngine)

    def flops_per_clock(self, precision: Precision) -> int:
        """Flops (or int-ops) per clock for the whole Xe-Core."""
        if precision.engine == ENGINE_VECTOR:
            return self.n_vector_engines * self.vector_engine.flops_per_clock(
                precision
            )
        assert precision.engine == ENGINE_MATRIX
        return self.n_matrix_engines * self.matrix_engine.ops_per_clock(precision)

    def hw_thread_partitions(self) -> dict[int, int]:
        """Register-file partitioning options (Section II).

        Returns {active hardware threads: registers per thread}.
        """
        return {8: 128, 4: 256}


@dataclass(frozen=True, slots=True)
class XeSlice:
    """Sixteen Xe-Cores grouped into a slice."""

    n_xe_cores: int = 16
    xe_core: XeCore = field(default_factory=XeCore)


@dataclass(frozen=True, slots=True)
class XeStack:
    """A Xe-Stack: 4 slices, shared 192 MiB LLC, local HBM2e.

    ``active_xe_cores`` models product binning: on Dawn all 64 Xe-Cores per
    stack are active; on Aurora only 56 (Section III).
    """

    n_slices: int = 4
    active_xe_cores: int = 64
    llc_bytes: int = 192 * MIB
    hbm_capacity_bytes: int = 64 * GB
    # Card HBM2e spec is ~3.2768 TB/s (paper quotes "3 TB/s [15]");
    # each stack owns half.
    hbm_peak_bw: float = 3.2768 * TERA / 2
    slice_: XeSlice = field(default_factory=XeSlice)

    def __post_init__(self) -> None:
        total = self.n_slices * self.slice_.n_xe_cores
        if not (0 < self.active_xe_cores <= total):
            raise ValueError(
                f"active_xe_cores must be in (0, {total}]: {self.active_xe_cores}"
            )

    @property
    def xe_core(self) -> XeCore:
        return self.slice_.xe_core

    @property
    def n_vector_engines(self) -> int:
        """Active vector engines (the paper's '448 per Stack' on Aurora)."""
        return self.active_xe_cores * self.xe_core.n_vector_engines

    @property
    def n_matrix_engines(self) -> int:
        return self.active_xe_cores * self.xe_core.n_matrix_engines

    def flops_per_clock(self, precision: Precision) -> int:
        return self.active_xe_cores * self.xe_core.flops_per_clock(precision)

    def peak_flops(self, precision: Precision, clock_hz: float) -> float:
        """Theoretical peak at a given clock.

        The paper's own arithmetic (Section IV-B.1): 1.2 GHz x 448 engines
        x 8 SIMD x 2 FMA x 2 = 17 TFlop/s for an Aurora stack.
        """
        return self.flops_per_clock(precision) * clock_hz


@dataclass(frozen=True, slots=True)
class PVCCard:
    """One Intel Data Center GPU Max 1550 card: two Xe-Stacks.

    Only stack 0 has the PCIe Gen5 link to the host; traffic originating
    on stack 1 crosses the stack-to-stack interconnect first (Section II).
    """

    stack: XeStack = field(default_factory=XeStack)
    n_stacks: int = 2
    pcie_stack: int = 0

    @property
    def total_xe_cores(self) -> int:
        return self.n_stacks * self.stack.active_xe_cores

    @property
    def hbm_capacity_bytes(self) -> int:
        return self.n_stacks * self.stack.hbm_capacity_bytes

    def flops_per_clock(self, precision: Precision) -> int:
        return self.n_stacks * self.stack.flops_per_clock(precision)


def full_pvc_card() -> PVCCard:
    """A fully-enabled Max 1550 (Dawn binning: 64 Xe-Cores per stack)."""
    return PVCCard(stack=XeStack(active_xe_cores=64))


def aurora_pvc_card() -> PVCCard:
    """Aurora binning: 56 active Xe-Cores per stack (Section III)."""
    return PVCCard(stack=XeStack(active_xe_cores=56))
