"""Logical GPU device models: PVC stack, H100 SXM5, MI250 GCD.

The paper compares everything at the granularity of a *logical device*
(a PVC Xe-Stack, one whole H100, one MI250 GCD) because that is the unit
its explicit-scaling MPI decomposition targets (one rank per stack/GCD,
Section II/III).  :class:`DeviceModel` is that unit.

PVC devices are *derived* from the architectural spec in
:mod:`repro.hw.spec`; H100 and MI250 devices are built from the vendor
datasheet peaks the paper's Table IV quotes (H100 FP32 67 / FP64 34
TFlop/s, 3.35 TB/s HBM3; MI250 FP32 = FP64 = 45.3 TFlop/s per card,
3.2 TB/s HBM2e).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.units import GB, KIB, MIB, TERA
from ..dtypes import Precision
from .frequency import FrequencyModel, WorkloadKind
from .memory import MemoryHierarchy, MemoryLevel
from .spec import (
    PVC_FP64_FMA_CLOCK_HZ,
    PVC_MAX_CLOCK_HZ,
    XeStack,
)

__all__ = [
    "DeviceModel",
    "GpuCardModel",
    "pvc_stack_device",
    "pvc_card_model",
    "h100_sxm5_device",
    "h100_card_model",
    "mi250_gcd_device",
    "mi250_card_model",
    "PVC_MEMORY_LATENCY_CYCLES",
    "H100_MEMORY_LATENCY_CYCLES",
    "MI250_MEMORY_LATENCY_CYCLES",
]

# ---------------------------------------------------------------------------
# Memory-latency anchors (cycles).  H100 values follow published
# microbenchmarking literature; PVC and MI250 are derived so that every
# relative claim in Section IV-B.6 holds exactly:
#   PVC L1 = H100 L1 * 1.90          (  "90% higher"  )
#   PVC L1 = MI250 L1 * (1 - 0.51)   (  "51% lower"   )
#   PVC L2 = H100 L2 * 1.50,  PVC L2 = MI250 L2 * 1.78
#   PVC HBM = H100 HBM * 1.23, PVC HBM = MI250 HBM * 1.44
# ---------------------------------------------------------------------------
H100_MEMORY_LATENCY_CYCLES = {"L1": 40.0, "L2": 264.0, "HBM": 560.0}
PVC_MEMORY_LATENCY_CYCLES = {
    "L1": H100_MEMORY_LATENCY_CYCLES["L1"] * 1.90,   # 76
    "L2": H100_MEMORY_LATENCY_CYCLES["L2"] * 1.50,   # 396
    "HBM": H100_MEMORY_LATENCY_CYCLES["HBM"] * 1.23,  # 688.8
}
MI250_MEMORY_LATENCY_CYCLES = {
    "L1": PVC_MEMORY_LATENCY_CYCLES["L1"] / (1.0 - 0.51),  # ~155
    "L2": PVC_MEMORY_LATENCY_CYCLES["L2"] / 1.78,          # ~222
    "HBM": PVC_MEMORY_LATENCY_CYCLES["HBM"] / 1.44,        # ~478
}


@dataclass(frozen=True, slots=True)
class DeviceModel:
    """One logical GPU device (PVC stack / whole H100 / MI250 GCD)."""

    name: str
    arch: str  # "pvc" | "h100" | "mi250"
    vendor: str
    flops_per_clock: Mapping[Precision, int]
    frequency: FrequencyModel
    memory: MemoryHierarchy
    hbm_capacity_bytes: int
    hbm_peak_bw: float
    #: Logical devices the vendor packages per card (2 for PVC/MI250).
    spec: XeStack | None = None

    def peak_flops(
        self,
        precision: Precision,
        kind: WorkloadKind = WorkloadKind.FMA_CHAIN,
    ) -> float:
        """Theoretical sustained peak for *precision* under the TDP model."""
        try:
            per_clock = self.flops_per_clock[precision]
        except KeyError:
            raise ValueError(
                f"{self.name} has no {precision} pipeline"
            ) from None
        return per_clock * self.frequency.sustained_hz(precision, kind)

    def nameplate_flops(self, precision: Precision) -> float:
        """Peak at the maximum clock, ignoring TDP downclocking."""
        return self.flops_per_clock[precision] * self.frequency.max_hz

    @property
    def hbm_latency_cycles(self) -> float:
        return self.memory.last.latency_cycles

    def hbm_latency_seconds(self) -> float:
        """HBM load-to-use latency in seconds at the sustained stream clock."""
        return self.hbm_latency_cycles / self.frequency.sustained_hz(
            None, WorkloadKind.STREAM
        )


@dataclass(frozen=True, slots=True)
class GpuCardModel:
    """A physical card packaging one or two logical devices."""

    name: str
    device: DeviceModel
    n_devices: int
    #: Link kind joining sibling devices on the card (None if single-device).
    intra_card_link: str | None = None
    #: Which on-card device owns the host PCIe link (PVC: stack 0 only).
    pcie_device: int = 0

    def __post_init__(self) -> None:
        if self.n_devices not in (1, 2):
            raise ValueError("cards package 1 or 2 logical devices")
        if self.n_devices == 2 and self.intra_card_link is None:
            raise ValueError("dual-device cards need an intra-card link")

    @property
    def hbm_capacity_bytes(self) -> int:
        return self.n_devices * self.device.hbm_capacity_bytes


# ---------------------------------------------------------------------------
# PVC
# ---------------------------------------------------------------------------

def _pvc_memory(stack: XeStack) -> MemoryHierarchy:
    return MemoryHierarchy(
        [
            MemoryLevel(
                "L1",
                stack.xe_core.l1_cache_bytes,
                PVC_MEMORY_LATENCY_CYCLES["L1"],
            ),
            MemoryLevel("L2", stack.llc_bytes, PVC_MEMORY_LATENCY_CYCLES["L2"]),
            MemoryLevel(
                "HBM",
                stack.hbm_capacity_bytes,
                PVC_MEMORY_LATENCY_CYCLES["HBM"],
            ),
        ]
    )


def pvc_stack_device(
    active_xe_cores: int,
    *,
    power_cap_w: float,
    idle_pinned: bool,
    name: str = "PVC Stack",
) -> DeviceModel:
    """Build a PVC Xe-Stack device from first principles.

    ``active_xe_cores`` is 64 on Dawn, 56 on Aurora (Section III).
    """
    stack = XeStack(active_xe_cores=active_xe_cores)
    per_clock = {
        p: stack.flops_per_clock(p)
        for p in (
            Precision.FP64,
            Precision.FP32,
            Precision.FP16,
            Precision.BF16,
            Precision.TF32,
            Precision.I8,
        )
    }
    freq = FrequencyModel(
        max_hz=PVC_MAX_CLOCK_HZ,
        fp64_fma_hz=PVC_FP64_FMA_CLOCK_HZ,
        idle_hz=PVC_MAX_CLOCK_HZ if idle_pinned else 0.3e9,
        power_cap_w=power_cap_w,
    )
    return DeviceModel(
        name=name,
        arch="pvc",
        vendor="Intel",
        flops_per_clock=per_clock,
        frequency=freq,
        memory=_pvc_memory(stack),
        hbm_capacity_bytes=stack.hbm_capacity_bytes,
        hbm_peak_bw=stack.hbm_peak_bw,
        spec=stack,
    )


def pvc_card_model(
    active_xe_cores: int, *, power_cap_w: float, idle_pinned: bool
) -> GpuCardModel:
    """A two-stack Max 1550 card with the given binning and power cap."""
    return GpuCardModel(
        name="Intel Data Center GPU Max 1550",
        device=pvc_stack_device(
            active_xe_cores, power_cap_w=power_cap_w, idle_pinned=idle_pinned
        ),
        n_devices=2,
        intra_card_link="mdfi",
    )


# ---------------------------------------------------------------------------
# NVIDIA H100 SXM5 80GB
# ---------------------------------------------------------------------------

def h100_sxm5_device() -> DeviceModel:
    """H100 SXM5 80GB from the datasheet peaks in Table IV.

    132 SMs at ~1.98 GHz boost: FP32 vector 2*128 flops/SM-clock -> 67
    TFlop/s; FP64 vector half that -> 34 TFlop/s; tensor peaks (dense)
    FP16/BF16 989, TF32 494, I8 1979.
    """
    boost_hz = 1.98e9
    per_clock = {
        Precision.FP32: 132 * 128 * 2,           # 33,792
        Precision.FP64: 132 * 64 * 2,            # 16,896
        Precision.FP16: round(989e12 / boost_hz),
        Precision.BF16: round(989e12 / boost_hz),
        Precision.TF32: round(494e12 / boost_hz),
        Precision.I8: round(1979e12 / boost_hz),
    }
    memory = MemoryHierarchy(
        [
            MemoryLevel("L1", 256 * KIB, H100_MEMORY_LATENCY_CYCLES["L1"]),
            MemoryLevel("L2", 50 * MIB, H100_MEMORY_LATENCY_CYCLES["L2"]),
            MemoryLevel("HBM", 80 * GB, H100_MEMORY_LATENCY_CYCLES["HBM"]),
        ]
    )
    return DeviceModel(
        name="NVIDIA H100 SXM5 80GB",
        arch="h100",
        vendor="NVIDIA",
        flops_per_clock=per_clock,
        frequency=FrequencyModel(max_hz=boost_hz, power_cap_w=700.0),
        memory=memory,
        hbm_capacity_bytes=80 * GB,
        hbm_peak_bw=3.35 * TERA,
    )


def h100_card_model() -> GpuCardModel:
    """A single-device H100 SXM5 card."""
    return GpuCardModel(
        name="NVIDIA H100 SXM5", device=h100_sxm5_device(), n_devices=1
    )


# ---------------------------------------------------------------------------
# AMD MI250 (per GCD)
# ---------------------------------------------------------------------------

def mi250_gcd_device() -> DeviceModel:
    """One MI250 Graphics Compute Die.

    Table IV: the MI250 card peaks at 45.3 TFlop/s for both FP32 and FP64
    (vector) and 3.2 TB/s HBM2e; each of the two GCDs owns half (104 CUs
    at ~1.7 GHz).  Matrix peaks: FP64 matrix 45.3 (card), FP16/BF16 362.1,
    I8 362.1 TOPS (card) -> halved per GCD.
    """
    clock_hz = 1.7e9
    per_clock = {
        Precision.FP64: 104 * 64 * 2,            # 13,312 -> 22.6 TF
        Precision.FP32: 104 * 64 * 2,
        Precision.FP16: round(362.1e12 / 2 / clock_hz),
        Precision.BF16: round(362.1e12 / 2 / clock_hz),
        Precision.I8: round(362.1e12 / 2 / clock_hz),
    }
    memory = MemoryHierarchy(
        [
            MemoryLevel("L1", 16 * KIB, MI250_MEMORY_LATENCY_CYCLES["L1"]),
            MemoryLevel("L2", 8 * MIB, MI250_MEMORY_LATENCY_CYCLES["L2"]),
            MemoryLevel("HBM", 64 * GB, MI250_MEMORY_LATENCY_CYCLES["HBM"]),
        ]
    )
    return DeviceModel(
        name="AMD MI250 GCD",
        arch="mi250",
        vendor="AMD",
        flops_per_clock=per_clock,
        frequency=FrequencyModel(max_hz=clock_hz, power_cap_w=560.0),
        memory=memory,
        hbm_capacity_bytes=64 * GB,
        hbm_peak_bw=3.2 * TERA / 2,
    )


def mi250_card_model() -> GpuCardModel:
    """A dual-GCD MI250 card joined by Infinity Fabric."""
    return GpuCardModel(
        name="AMD Instinct MI250",
        device=mi250_gcd_device(),
        n_devices=2,
        intra_card_link="infinity-fabric",
    )
