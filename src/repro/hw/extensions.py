"""Extension systems beyond the paper's four nodes.

The paper's conclusions call for "future work ... to further compare
mini-apps and applications on other supercomputing systems such as
Frontier against Dawn and Aurora results", and Section V-B.2 mentions a
miniBUDE check on an **A100** ("which reached 62% of its peak").  This
module provides those two reference points:

* :func:`frontier` — one Frontier node: 64-core optimized EPYC ("Trento"),
  four MI250X cards (eight GCDs), the system whose *measured* GCD numbers
  the paper's Table IV quotes (DGEMM 24.1, SGEMM 33.8 TFlop/s, 1.3 TB/s
  stream, 25 GB/s PCIe, 37 GB/s GCD-to-GCD);
* :func:`a100_sxm4_device` / :func:`jlse_a100` — an A100 SXM4 40GB point
  of comparison for the miniBUDE efficiency discussion.
"""

from __future__ import annotations

from ..core.units import GB, KIB, MIB, TERA
from ..dtypes import Precision
from .cpu import CpuSocket
from .frequency import FrequencyModel
from .gpu import DeviceModel, GpuCardModel
from .interconnect import LinkKind, build_dual_gcd_fabric, build_single_device_fabric
from .memory import MemoryHierarchy, MemoryLevel
from .node import Node
from .systems import System

__all__ = [
    "mi250x_gcd_device",
    "frontier",
    "a100_sxm4_device",
    "jlse_a100",
    "EXTENSION_SYSTEMS",
    "get_extension_system",
]


def mi250x_gcd_device() -> DeviceModel:
    """One MI250X GCD (Frontier's accelerator).

    The MI250X is the MI250's HPC sibling: 110 CUs per GCD (vs 104),
    47.9 TFlop/s vector FP64/FP32 per card, same 3.2 TB/s HBM2e.
    """
    clock_hz = 1.7e9
    per_clock = {
        Precision.FP64: 110 * 64 * 2,  # 14,080 -> 23.9 TF @ 1.7 GHz
        Precision.FP32: 110 * 64 * 2,
        Precision.FP16: round(383e12 / 2 / clock_hz),
        Precision.BF16: round(383e12 / 2 / clock_hz),
        Precision.I8: round(383e12 / 2 / clock_hz),
    }
    memory = MemoryHierarchy(
        [
            MemoryLevel("L1", 16 * KIB, 155.0),
            MemoryLevel("L2", 8 * MIB, 222.0),
            MemoryLevel("HBM", 64 * GB, 478.0),
        ]
    )
    return DeviceModel(
        name="AMD MI250X GCD",
        arch="mi250",  # shares the MI250 calibration family
        vendor="AMD",
        flops_per_clock=per_clock,
        frequency=FrequencyModel(max_hz=clock_hz, power_cap_w=560.0),
        memory=memory,
        hbm_capacity_bytes=64 * GB,
        hbm_peak_bw=3.2 * TERA / 2,
    )


def _trento_socket() -> CpuSocket:
    return CpuSocket(
        model='AMD EPYC 7A53 "Trento"',
        cores=64,
        threads=128,
        base_clock_hz=2.0e9,
        ddr_peak_bw=204.8e9,
        ddr_capacity_bytes=512 * GB,
    )


def frontier() -> System:
    """One Frontier node: 1x Trento socket + 4x MI250X (8 GCDs).

    Frontier is single-socket; we model it as two half-sockets so the
    dual-socket binding/contention machinery applies unchanged (the
    paper's per-socket arithmetic maps onto Frontier's two NUMA halves).
    """
    half = CpuSocket(
        model=_trento_socket().model + " (NUMA half)",
        cores=32,
        threads=64,
        base_clock_hz=2.0e9,
        ddr_peak_bw=102.4e9,
        ddr_capacity_bytes=256 * GB,
    )
    socket_of_card = (0, 0, 1, 1)
    card = GpuCardModel(
        name="AMD Instinct MI250X",
        device=mi250x_gcd_device(),
        n_devices=2,
        intra_card_link="infinity-fabric",
    )
    node = Node(
        name="Frontier node",
        sockets=(half, half),
        card=card,
        n_cards=4,
        socket_of_card=socket_of_card,
        fabric=build_dual_gcd_fabric(4, socket_of_card),
    )
    return System(
        name="frontier",
        node=node,
        calibration_key="jlse-mi250",  # Table IV: same measured efficiencies
        display_name="Frontier (MI250X)",
        software="ROCm (Frontier PE)",
    )


def a100_sxm4_device() -> DeviceModel:
    """A100 SXM4 40GB: 108 SMs at ~1.41 GHz (FP32 19.5, FP64 9.7 TFlop/s
    vector; 1.56 TB/s HBM2)."""
    boost_hz = 1.41e9
    per_clock = {
        Precision.FP32: 108 * 64 * 2,  # 13,824 -> 19.5 TF
        Precision.FP64: 108 * 32 * 2,  # 6,912 -> 9.7 TF
        Precision.FP16: round(312e12 / boost_hz),
        Precision.BF16: round(312e12 / boost_hz),
        Precision.TF32: round(156e12 / boost_hz),
        Precision.I8: round(624e12 / boost_hz),
    }
    memory = MemoryHierarchy(
        [
            MemoryLevel("L1", 192 * KIB, 38.0),
            MemoryLevel("L2", 40 * MIB, 220.0),
            MemoryLevel("HBM", 40 * GB, 490.0),
        ]
    )
    return DeviceModel(
        name="NVIDIA A100 SXM4 40GB",
        arch="a100",
        vendor="NVIDIA",
        flops_per_clock=per_clock,
        frequency=FrequencyModel(max_hz=boost_hz, power_cap_w=400.0),
        memory=memory,
        hbm_capacity_bytes=40 * GB,
        hbm_peak_bw=1.555 * TERA,
    )


def jlse_a100() -> System:
    """A 4x A100 JLSE-style node (the paper's A100 miniBUDE data point)."""
    from .cpu import xeon_platinum_8468

    socket_of_card = (0, 0, 1, 1)
    node = Node(
        name="JLSE-A100 node",
        sockets=(xeon_platinum_8468(), xeon_platinum_8468()),
        card=GpuCardModel(name="NVIDIA A100 SXM4", device=a100_sxm4_device(), n_devices=1),
        n_cards=4,
        socket_of_card=socket_of_card,
        fabric=build_single_device_fabric(
            4, socket_of_card, LinkKind.PCIE_GEN4_X16, LinkKind.NVLINK4
        ),
    )
    return System(
        name="jlse-a100",
        node=node,
        calibration_key="jlse-a100",
        display_name="JLSE (A100)",
        software="CUDA 12",
    )


_EXT = {"frontier": frontier, "jlse-a100": jlse_a100}

EXTENSION_SYSTEMS: tuple[str, ...] = tuple(sorted(_EXT))


def get_extension_system(name: str) -> System:
    """Look up an extension system (frontier / jlse-a100) by name."""
    try:
        return _EXT[name.strip().lower()]()
    except KeyError:
        from ..errors import UnknownSystemError

        raise UnknownSystemError(
            f"unknown extension system {name!r}; known: {EXTENSION_SYSTEMS}"
        ) from None
