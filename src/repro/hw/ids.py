"""Identifiers for logical devices within a node.

The paper uses the notation ``GPU_ID.STACK_ID`` ("0.0", "5.1", ...) for a
PVC stack; we adopt it for every system, with single-stack devices (H100)
always using stack 0 and MI250 GCDs mapping to stacks 0/1 of their card.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["StackRef", "parse_stack_ref"]

_REF_RE = re.compile(r"^(\d+)\.(\d+)$")


@dataclass(frozen=True, slots=True, order=True)
class StackRef:
    """A (card, stack) pair identifying one logical device."""

    card: int
    stack: int

    def __post_init__(self) -> None:
        if self.card < 0 or self.stack < 0:
            raise ValueError(f"negative StackRef: {self.card}.{self.stack}")

    def __str__(self) -> str:
        return f"{self.card}.{self.stack}"

    @property
    def flat(self) -> tuple[int, int]:
        return (self.card, self.stack)

    def sibling(self) -> "StackRef":
        """The other stack on the same card (valid for 2-stack cards)."""
        return StackRef(self.card, 1 - self.stack)


def parse_stack_ref(text: str) -> StackRef:
    """Parse the paper's ``CARD.STACK`` notation.

    >>> parse_stack_ref("5.1")
    StackRef(card=5, stack=1)
    """
    m = _REF_RE.match(text.strip())
    if m is None:
        raise ValueError(f"not a CARD.STACK reference: {text!r}")
    return StackRef(int(m.group(1)), int(m.group(2)))
