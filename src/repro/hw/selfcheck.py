"""Hardware-model self-checks.

Structural invariants every node model must satisfy, runnable as a
diagnostic (``pvc-bench selfcheck``) and asserted by the test suite.
A failed check means a construction bug, not a calibration issue.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..dtypes import Precision
from ..errors import TopologyError
from .node import Node
from .systems import System

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injectors import FaultInjector

__all__ = ["CheckResult", "self_check", "HealthReport", "node_health"]


@dataclass(frozen=True)
class CheckResult:
    name: str
    passed: bool
    detail: str


def _check(name: str, condition: bool, detail: str) -> CheckResult:
    return CheckResult(name, bool(condition), detail)


def self_check(system: System) -> list[CheckResult]:
    """All structural invariants for one system."""
    node: Node = system.node
    fabric = node.fabric
    checks: list[CheckResult] = []

    # 1. Every logical device appears in the fabric.
    fabric_stacks = set(fabric.stacks)
    checks.append(
        _check(
            "fabric covers all stacks",
            set(node.stacks()) == fabric_stacks,
            f"{len(fabric_stacks)} fabric vs {node.n_stacks} node stacks",
        )
    )

    # 2. Planes partition the stacks exactly.
    if fabric.planes:
        union = set().union(*fabric.planes)
        overlap = (
            set(fabric.planes[0]) & set(fabric.planes[1])
            if len(fabric.planes) > 1
            else set()
        )
        checks.append(
            _check(
                "planes partition the stacks",
                union == fabric_stacks and not overlap,
                f"{len(union)} in planes, {len(overlap)} overlapping",
            )
        )

    # 3. Each card's stack 0 reaches its host socket.
    reachable = all(
        fabric.host_route(node.socket_of_card[card], node.stacks_of_card(card)[0])
        for card in range(node.n_cards)
    )
    checks.append(_check("every card has a host route", reachable, ""))

    # 4. Every stack pair is routable without the host.
    stacks = node.stacks()
    ok = True
    for a in stacks:
        for b in stacks:
            if a != b and not fabric.routes(a, b):
                ok = False
    checks.append(_check("all-to-all device routing", ok, ""))

    # 5. Peaks are consistent: FP32 >= FP64 for every declared precision.
    dev = node.device
    if Precision.FP64 in dev.flops_per_clock and Precision.FP32 in dev.flops_per_clock:
        checks.append(
            _check(
                "FP32 peak >= FP64 peak",
                dev.peak_flops(Precision.FP32) >= dev.peak_flops(Precision.FP64),
                "",
            )
        )

    # 6. Memory hierarchy grows in size and latency (already enforced at
    # construction; re-checked here as belt and braces).
    levels = dev.memory.levels
    checks.append(
        _check(
            "memory hierarchy monotone",
            all(
                a.capacity_bytes < b.capacity_bytes
                and a.latency_cycles < b.latency_cycles
                for a, b in zip(levels, levels[1:])
            ),
            " -> ".join(l.name for l in levels),
        )
    )

    # 7. Socket attachment is balanced (paper nodes split cards evenly).
    per_socket = [node.gpus_per_socket(s) for s in range(len(node.sockets))]
    checks.append(
        _check(
            "cards balanced across sockets",
            max(per_socket) - min(per_socket) <= 1,
            str(per_socket),
        )
    )

    # 8. HBM capacity aggregates correctly.
    checks.append(
        _check(
            "HBM totals consistent",
            node.total_hbm_bytes
            == node.n_stacks * dev.hbm_capacity_bytes,
            f"{node.total_hbm_bytes / 1e9:.0f} GB",
        )
    )
    return checks


# ---------------------------------------------------------------------------
# Node health under fault injection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HealthReport:
    """Snapshot of a node's health after faults have been applied.

    ``pvc-bench health --inject <scenario>`` fast-forwards the fault plan
    and prints this report, so operators can preview what a scenario does
    to the topology before committing to a full benchmark run.
    """

    system: str
    n_stacks: int
    dead_stacks: tuple[str, ...] = ()
    degraded_links: tuple[str, ...] = ()
    unroutable_pairs: int = 0
    clock_ratio: float = 1.0
    incidents: tuple[str, ...] = ()

    @property
    def healthy(self) -> bool:
        return (
            not self.dead_stacks
            and not self.degraded_links
            and self.unroutable_pairs == 0
            and self.clock_ratio == 1.0
        )

    def render(self) -> str:
        alive = self.n_stacks - len(self.dead_stacks)
        lines = [
            f"node health: {self.system}",
            f"  stacks alive: {alive}/{self.n_stacks}"
            + (
                f" (lost: {', '.join(self.dead_stacks)})"
                if self.dead_stacks
                else ""
            ),
        ]
        if self.degraded_links:
            lines.append("  degraded links:")
            lines.extend(f"    {entry}" for entry in self.degraded_links)
        else:
            lines.append("  degraded links: none")
        lines.append(f"  unroutable device pairs: {self.unroutable_pairs}")
        if self.clock_ratio != 1.0:
            lines.append(f"  clocks throttled to {self.clock_ratio:.0%}")
        if self.incidents:
            lines.append("  fault history:")
            lines.extend(f"    {msg}" for msg in self.incidents)
        lines.append(
            "  verdict: "
            + ("HEALTHY" if self.healthy else "DEGRADED")
        )
        return "\n".join(lines)


def node_health(
    system: System, faults: "FaultInjector | None" = None
) -> HealthReport:
    """Assess a node's current health (fabric overlay + fault history)."""
    node: Node = system.node
    fabric = node.fabric
    dead = tuple(str(r) for r in fabric.down_stacks)
    degraded = tuple(
        f"{a} -- {b}: {health:.0%} of nominal bandwidth"
        for a, b, health in fabric.degraded_links
    )
    unroutable = 0
    alive = fabric.alive_stacks
    for a, b in itertools.combinations(alive, 2):
        try:
            fabric.route(a, b)
        except TopologyError:
            unroutable += 1
    return HealthReport(
        system=system.name,
        n_stacks=node.n_stacks,
        dead_stacks=dead,
        degraded_links=degraded,
        unroutable_pairs=unroutable,
        clock_ratio=faults.clock_ratio() if faults is not None else 1.0,
        incidents=tuple(faults.history) if faults is not None else (),
    )
