"""Factories for the four systems of the paper (Section III).

* **Aurora** — 2x Xeon Gold 5320 (52c, 64 GB HBM + 512 GB DDR5 each),
  six PVC with 56 active Xe-Cores per stack, 500 W power cap, idle
  frequency pinned at 1.6 GHz, all-to-all Xe-Link with the published
  two-plane wiring.
* **Dawn** — 2x Xeon Platinum 8468 (48c, 1 TB DDR total), four PVC with
  all 64 Xe-Cores active, 600 W power cap.
* **JLSE-H100** — 2x Xeon Platinum 8468, four NVIDIA H100 SXM5 80GB.
* **JLSE-MI250** — 2x EPYC 7713 (64c), four AMD MI250 (eight GCDs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.units import GB
from ..errors import UnknownSystemError
from .cpu import CpuSocket, epyc_7713, xeon_gold_5320_max, xeon_platinum_8468
from .gpu import GpuCardModel, h100_card_model, mi250_card_model, pvc_card_model
from .interconnect import (
    LinkKind,
    aurora_planes,
    build_dual_gcd_fabric,
    build_pvc_fabric,
    build_single_device_fabric,
)
from .node import Node

__all__ = [
    "System",
    "aurora",
    "dawn",
    "jlse_h100",
    "jlse_mi250",
    "get_system",
    "SYSTEM_NAMES",
    "all_systems",
]


@dataclass(frozen=True)
class System:
    """A named system: its node model plus reporting metadata."""

    name: str
    node: Node
    #: Label used for the calibration tables in :mod:`repro.sim.calibration`.
    calibration_key: str
    #: The paper's column headings ("Aurora (PVC)", ...).
    display_name: str
    #: Software stack note (Section III), for reports only.
    software: str

    @property
    def n_stacks(self) -> int:
        return self.node.n_stacks

    @property
    def device(self):
        return self.node.device

    def full_node_scope_name(self) -> str:
        """'Six PVC' / 'Four PVC' / 'Four GPU' per the paper's tables."""
        n = self.node.n_cards
        word = {4: "Four", 6: "Six"}.get(n, str(n))
        unit = "PVC" if self.device.arch == "pvc" else "GPU"
        return f"{word} {unit}"


def aurora() -> System:
    """The Aurora node (Section III): 6x PVC, 56 Xe-Cores/stack, 500 W."""
    card = pvc_card_model(active_xe_cores=56, power_cap_w=500.0, idle_pinned=True)
    socket_of_card = (0, 0, 0, 1, 1, 1)
    node = Node(
        name="Aurora node",
        sockets=(xeon_gold_5320_max(), xeon_gold_5320_max()),
        card=card,
        n_cards=6,
        socket_of_card=socket_of_card,
        fabric=build_pvc_fabric(6, socket_of_card, planes=aurora_planes()),
    )
    return System(
        name="aurora",
        node=node,
        calibration_key="aurora",
        display_name="Aurora (PVC)",
        software="Intel oneAPI 2024.1 public release",
    )


def dawn() -> System:
    """The Dawn node (Section III): 4x PVC, 64 Xe-Cores/stack, 600 W."""
    card = pvc_card_model(active_xe_cores=64, power_cap_w=600.0, idle_pinned=False)
    socket_of_card = (0, 0, 1, 1)
    sock = xeon_platinum_8468()
    # Dawn carries 1024 GB DDR total (Section III).
    sock = CpuSocket(
        model=sock.model,
        cores=sock.cores,
        threads=sock.threads,
        base_clock_hz=sock.base_clock_hz,
        ddr_peak_bw=sock.ddr_peak_bw,
        ddr_capacity_bytes=512 * GB,
    )
    node = Node(
        name="Dawn node",
        sockets=(sock, sock),
        card=card,
        n_cards=4,
        socket_of_card=socket_of_card,
        fabric=build_pvc_fabric(4, socket_of_card),
    )
    return System(
        name="dawn",
        node=node,
        calibration_key="dawn",
        display_name="Dawn (PVC)",
        software="Intel oneAPI 2024.1 public release",
    )


def jlse_h100() -> System:
    """The JLSE-H100 node: 2x Xeon 8468, 4x H100 SXM5 80GB."""
    socket_of_card = (0, 0, 1, 1)
    node = Node(
        name="JLSE-H100 node",
        sockets=(xeon_platinum_8468(), xeon_platinum_8468()),
        card=h100_card_model(),
        n_cards=4,
        socket_of_card=socket_of_card,
        fabric=build_single_device_fabric(
            4, socket_of_card, LinkKind.PCIE_GEN5_X16, LinkKind.NVLINK4
        ),
    )
    return System(
        name="jlse-h100",
        node=node,
        calibration_key="jlse-h100",
        display_name="JLSE (H100)",
        software="NVHPC 24.1 and CUDA 12.3.0",
    )


def jlse_mi250() -> System:
    """The JLSE-MI250 node: 2x EPYC 7713, 4x MI250 (8 GCDs)."""
    socket_of_card = (0, 0, 1, 1)
    node = Node(
        name="JLSE-MI250 node",
        sockets=(epyc_7713(), epyc_7713()),
        card=mi250_card_model(),
        n_cards=4,
        socket_of_card=socket_of_card,
        fabric=build_dual_gcd_fabric(4, socket_of_card),
    )
    return System(
        name="jlse-mi250",
        node=node,
        calibration_key="jlse-mi250",
        display_name="JLSE (MI250)",
        software="ROCm 6.1.0",
    )


_FACTORIES: dict[str, Callable[[], System]] = {
    "aurora": aurora,
    "dawn": dawn,
    "jlse-h100": jlse_h100,
    "jlse-mi250": jlse_mi250,
}

#: Canonical system order used throughout the tables (paper order).
SYSTEM_NAMES: tuple[str, ...] = ("aurora", "dawn", "jlse-h100", "jlse-mi250")

_ALIASES = {
    "h100": "jlse-h100",
    "mi250": "jlse-mi250",
    "jlse_h100": "jlse-h100",
    "jlse_mi250": "jlse-mi250",
}


def get_system(name: str) -> System:
    """Look up a system by name (case-insensitive, aliases accepted)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _FACTORIES[key]()
    except KeyError:
        raise UnknownSystemError(
            f"unknown system {name!r}; known: {', '.join(SYSTEM_NAMES)}"
        ) from None


def all_systems() -> list[System]:
    """All four paper systems, in the paper's column order."""
    return [get_system(n) for n in SYSTEM_NAMES]
