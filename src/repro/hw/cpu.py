"""Host CPU socket models.

The paper stresses that node-level design differences — CPU memory
bandwidth, core counts, how many GPUs share a socket — show up in GPU
application performance (miniQMC's CPU-congestion bottleneck, HACC's
host-side SPH work, full-node PCIe contention).  These socket models carry
exactly the parameters those effects need.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.units import GB

__all__ = [
    "CpuSocket",
    "xeon_platinum_8468",
    "xeon_gold_5320_max",
    "epyc_7713",
]


@dataclass(frozen=True, slots=True)
class CpuSocket:
    """One CPU socket.

    ``ddr_peak_bw`` is the per-socket theoretical DRAM bandwidth;
    ``hbm_peak_bw`` is non-None only for HBM-equipped parts (the Aurora
    Xeons carry 64 GB of on-package HBM, Section III).
    ``os_reserved_cores`` models cores held back for OS kernel threads —
    on Aurora, cores 0 and 52, i.e. the first core of each socket
    (Section IV-A), hence one reserved core per socket here.
    """

    model: str
    cores: int
    threads: int
    base_clock_hz: float
    ddr_peak_bw: float
    ddr_capacity_bytes: int
    hbm_peak_bw: float | None = None
    hbm_capacity_bytes: int | None = None
    os_reserved_cores: int = 1

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.threads < self.cores:
            raise ValueError(f"bad core/thread counts: {self.cores}/{self.threads}")
        if self.ddr_peak_bw <= 0:
            raise ValueError("ddr_peak_bw must be positive")
        if not (0 <= self.os_reserved_cores < self.cores):
            raise ValueError("os_reserved_cores out of range")

    @property
    def usable_cores(self) -> int:
        return self.cores - self.os_reserved_cores

    @property
    def best_mem_bw(self) -> float:
        """Fastest memory pool on the socket (HBM if present, else DDR)."""
        return max(self.ddr_peak_bw, self.hbm_peak_bw or 0.0)


def xeon_platinum_8468() -> CpuSocket:
    """48-core Sapphire Rapids (Dawn and JLSE-H100 hosts); 8ch DDR5-4800."""
    return CpuSocket(
        model="Intel Xeon Platinum 8468",
        cores=48,
        threads=96,
        base_clock_hz=2.1e9,
        ddr_peak_bw=307.2e9,  # 8 x DDR5-4800
        ddr_capacity_bytes=512 * GB,
    )


def xeon_gold_5320_max(ddr_capacity_bytes: int = 512 * GB) -> CpuSocket:
    """Aurora host socket: 52 cores, 64 GB on-package HBM + DDR5.

    Section III: "two 52-core (104-thread) Intel Xeon Gold 5320 CPUs with
    64GB HBM and 512GB DDR5 each".
    """
    return CpuSocket(
        model="Intel Xeon Gold 5320 (HBM)",
        cores=52,
        threads=104,
        base_clock_hz=2.2e9,
        ddr_peak_bw=307.2e9,  # 8 x DDR5-4800
        ddr_capacity_bytes=ddr_capacity_bytes,
        hbm_peak_bw=1.0e12,
        hbm_capacity_bytes=64 * GB,
    )


def epyc_7713() -> CpuSocket:
    """64-core Milan (JLSE-MI250 host); 8ch DDR4-3200."""
    return CpuSocket(
        model="AMD EPYC 7713",
        cores=64,
        threads=128,
        base_clock_hz=2.0e9,
        ddr_peak_bw=204.8e9,  # 8 x DDR4-3200
        ddr_capacity_bytes=256 * GB,
    )
