"""A compute node: CPU sockets + GPU cards + interconnect fabric.

This is the unit every benchmark in the paper runs on.  The node knows
its explicit-scaling decomposition (one MPI rank per logical device,
Section II), which socket each card hangs off (for rank binding and
host-side contention), and the full fabric for transfer routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConfigurationError
from .cpu import CpuSocket
from .gpu import DeviceModel, GpuCardModel
from .ids import StackRef
from .interconnect import Fabric

__all__ = ["Node"]


@dataclass(frozen=True)
class Node:
    """One node of a system.

    Attributes
    ----------
    name:
        Human-readable node label ("Aurora node", ...).
    sockets:
        The CPU sockets (all paper systems are dual-socket).
    card:
        The GPU card model (all cards in a node are identical).
    n_cards:
        Cards in the node (6 on Aurora, 4 elsewhere).
    socket_of_card:
        Which socket index each card attaches to.
    fabric:
        Interconnect graph over host sockets and logical devices.
    """

    name: str
    sockets: tuple[CpuSocket, ...]
    card: GpuCardModel
    n_cards: int
    socket_of_card: tuple[int, ...]
    fabric: Fabric = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.socket_of_card) != self.n_cards:
            raise ConfigurationError(
                f"{self.name}: socket_of_card must list all {self.n_cards} cards"
            )
        for s in self.socket_of_card:
            if not (0 <= s < len(self.sockets)):
                raise ConfigurationError(f"{self.name}: bad socket index {s}")
        missing = [r for r in self.stacks() if r not in set(self.fabric.stacks)]
        if missing:
            raise ConfigurationError(
                f"{self.name}: fabric missing stacks {missing}"
            )

    # -- device enumeration ----------------------------------------------

    @property
    def device(self) -> DeviceModel:
        """The logical device model (identical across the node)."""
        return self.card.device

    @property
    def n_stacks(self) -> int:
        """Total logical devices (PVC stacks / GCDs / H100s)."""
        return self.n_cards * self.card.n_devices

    def stacks(self) -> list[StackRef]:
        """All logical devices in deterministic (card, stack) order."""
        return [
            StackRef(card, stack)
            for card in range(self.n_cards)
            for stack in range(self.card.n_devices)
        ]

    def stacks_of_card(self, card: int) -> list[StackRef]:
        self._check_card(card)
        return [StackRef(card, s) for s in range(self.card.n_devices)]

    def _check_card(self, card: int) -> None:
        if not (0 <= card < self.n_cards):
            raise ConfigurationError(f"{self.name}: no card {card}")

    # -- locality ----------------------------------------------------------

    def socket_of(self, ref: StackRef) -> int:
        """The socket closest to a logical device (its card's socket)."""
        self._check_card(ref.card)
        return self.socket_of_card[ref.card]

    def stacks_on_socket(self, socket: int) -> list[StackRef]:
        return [r for r in self.stacks() if self.socket_of(r) == socket]

    def cards_on_socket(self, socket: int) -> list[int]:
        return [
            c for c in range(self.n_cards) if self.socket_of_card[c] == socket
        ]

    # -- aggregates ----------------------------------------------------------

    @property
    def total_cores(self) -> int:
        return sum(s.cores for s in self.sockets)

    @property
    def usable_cores(self) -> int:
        return sum(s.usable_cores for s in self.sockets)

    @property
    def total_hbm_bytes(self) -> int:
        return self.n_stacks * self.device.hbm_capacity_bytes

    @property
    def total_ddr_bw(self) -> float:
        return sum(s.ddr_peak_bw for s in self.sockets)

    @property
    def total_host_mem_bw(self) -> float:
        """Best host memory bandwidth (HBM-backed sockets count their HBM)."""
        return sum(s.best_mem_bw for s in self.sockets)

    def gpus_per_socket(self, socket: int) -> int:
        return len(self.cards_on_socket(socket))

    def describe(self) -> str:
        sock = self.sockets[0]
        return (
            f"{self.name}: 2x {sock.model} ({sock.cores}c), "
            f"{self.n_cards}x {self.card.name} "
            f"({self.n_stacks} logical devices)"
        )
