"""GPU memory-hierarchy model used by the ``lats`` latency benchmark.

Figure 1 of the paper plots pointer-chase latency (in cycles) against
working-set size for PVC (Aurora and Dawn), H100, and MI250.  The model
here is the standard staircase: a working set is served by the smallest
level that contains it, at that level's load-to-use latency, with a short
smooth transition around each capacity boundary (as real pointer-chase
curves show due to partial hits).

Latency values (cycles) are chosen to satisfy every relative statement in
Section IV-B.6:

* PVC L1 is 512 KiB, "90% higher latency than the H100" and "about 51%
  lower than the MI250";
* PVC L2 latency is "50% and 78% higher than the H100 and MI250";
* PVC HBM2e access latency is "23% and 44% higher" than H100 HBM3 and
  MI250 HBM2e.

Absolute anchors for H100 follow published microbenchmark literature
(L1 ~40 cycles, L2 ~264, HBM ~560); the derived PVC/MI250 values then
reproduce the paper's percentages exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["MemoryLevel", "MemoryHierarchy"]


@dataclass(frozen=True, slots=True)
class MemoryLevel:
    """One level of the on-device memory hierarchy."""

    name: str
    capacity_bytes: int
    latency_cycles: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.latency_cycles <= 0:
            raise ValueError(f"{self.name}: latency must be positive")


class MemoryHierarchy:
    """An ordered sequence of levels, smallest/fastest first."""

    def __init__(self, levels: Sequence[MemoryLevel]) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        for a, b in zip(levels, levels[1:]):
            if a.capacity_bytes >= b.capacity_bytes:
                raise ValueError(
                    f"levels must grow strictly: {a.name} >= {b.name}"
                )
            if a.latency_cycles >= b.latency_cycles:
                raise ValueError(
                    f"latency must grow with level: {a.name} >= {b.name}"
                )
        self.levels: tuple[MemoryLevel, ...] = tuple(levels)

    def __iter__(self):
        return iter(self.levels)

    def __getitem__(self, name: str) -> MemoryLevel:
        for level in self.levels:
            if level.name == name:
                return level
        raise KeyError(name)

    @property
    def last(self) -> MemoryLevel:
        return self.levels[-1]

    def level_for(self, working_set_bytes: int) -> MemoryLevel:
        """Smallest level whose capacity contains *working_set_bytes*.

        Working sets larger than the last level still map to it (device
        memory backs everything in this model).
        """
        if working_set_bytes <= 0:
            raise ValueError("working set must be positive")
        for level in self.levels:
            if working_set_bytes <= level.capacity_bytes:
                return level
        return self.last

    def latency_cycles(self, working_set_bytes: int, *, sharpness: float = 8.0) -> float:
        """Pointer-chase latency for a working set, with smoothed edges.

        A pure staircase mispredicts right at a capacity boundary where a
        chase still gets partial hits from the smaller level; we blend the
        two neighbouring levels over roughly a factor-of-two window in
        working-set size using a logistic weight (matching the rounded
        knees visible in the paper's Figure 1).
        """
        if working_set_bytes <= 0:
            raise ValueError("working set must be positive")
        lat = float(self.levels[0].latency_cycles)
        for lower, upper in zip(self.levels, self.levels[1:]):
            # Weight of the *upper* level: 0 well below the boundary,
            # 1 well above it.
            x = math.log2(working_set_bytes / lower.capacity_bytes)
            w = 1.0 / (1.0 + math.exp(-sharpness * x))
            lat = lat + w * (upper.latency_cycles - lat)
        return lat

    def latency_curve(
        self, sizes_bytes: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`latency_cycles` over many working-set sizes."""
        return np.array(
            [self.latency_cycles(int(s)) for s in np.asarray(sizes_bytes)]
        )

    def plateau_latency(self, working_set_bytes: int) -> float:
        """Staircase (non-smoothed) latency: the level's nominal cycles."""
        return self.level_for(working_set_bytes).latency_cycles
