"""Node interconnect model: PCIe host links, intra-card links, GPU fabric.

Two structural facts from the paper drive this module:

1. **Only Stack 0 of a PVC card has the PCIe link** (Section II): host
   traffic for stack 1 first crosses the on-card stack-to-stack (MDFI)
   interconnect.
2. **Xe-Link planes** (Section IV-A.4): although the stacks appear
   all-to-all connected, each stack physically belongs to one of two
   planes.  On Aurora the planes are ``{0.0, 1.1, 2.0, 3.0, 4.0, 5.1}``
   and ``{0.1, 1.0, 2.1, 3.1, 4.1, 5.0}``.  Stacks within a plane are
   directly connected; a transfer between stacks in *different* planes
   needs an extra hop, e.g. ``0.0 -> 1.0`` routes as ``0.0 -> 1.1 -> 1.0``
   or ``0.0 -> 0.1 -> 1.0``.

The fabric is a :mod:`networkx` multigraph over host sockets and logical
devices; routing enumerates simple paths and picks minimum-hop routes, so
the two alternative paths the paper describes fall out of the topology.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from ..errors import TopologyError
from .ids import StackRef

__all__ = ["LinkKind", "Link", "Route", "Fabric", "HOST"]

#: Graph node representing a host socket: ("host", socket_index).
HOST = "host"


class LinkKind(enum.Enum):
    """Physical link types with their per-direction raw peak bandwidth."""

    PCIE_GEN5_X16 = ("PCIe Gen5 x16", 64e9)
    PCIE_GEN4_X16 = ("PCIe Gen4 x16", 32e9)
    MDFI = ("PVC stack-to-stack", 230e9)
    XELINK = ("Xe-Link", 26.6e9)
    NVLINK4 = ("NVLink 4", 450e9)
    INFINITY_FABRIC = ("Infinity Fabric", 50e9)
    XGMI = ("xGMI GPU bridge", 50e9)

    def __init__(self, label: str, peak_bw_per_dir: float) -> None:
        self.label = label
        self.peak_bw_per_dir = peak_bw_per_dir


@dataclass(frozen=True, slots=True)
class Link:
    """A bidirectional link instance between two fabric endpoints."""

    kind: LinkKind
    #: Small fixed per-message latency (seconds).
    latency_s: float = 2e-6

    @property
    def peak_bw_per_dir(self) -> float:
        return self.kind.peak_bw_per_dir


@dataclass(frozen=True, slots=True)
class Route:
    """An ordered path through the fabric."""

    hops: tuple[tuple[object, object, Link], ...]

    @property
    def n_hops(self) -> int:
        return len(self.hops)

    @property
    def endpoints(self) -> tuple[object, object]:
        return (self.hops[0][0], self.hops[-1][1])

    @property
    def kinds(self) -> tuple[LinkKind, ...]:
        return tuple(link.kind for _, _, link in self.hops)

    @property
    def latency_s(self) -> float:
        return sum(link.latency_s for _, _, link in self.hops)

    def bottleneck_bw(self, efficiency) -> float:
        """Min over hops of ``peak * efficiency(kind)``."""
        return min(
            link.peak_bw_per_dir * efficiency(link.kind)
            for _, _, link in self.hops
        )

    def describe(self) -> str:
        parts = [str(self.hops[0][0])]
        for _, dst, link in self.hops:
            parts.append(f"--{link.kind.name}--> {dst}")
        return " ".join(parts)


class Fabric:
    """The node's interconnect graph.

    Nodes are either ``(HOST, socket)`` tuples or :class:`StackRef`s.
    """

    def __init__(self) -> None:
        self._g = nx.Graph()
        self._planes: tuple[frozenset[StackRef], ...] = ()
        # Health overlay (fault injection).  The underlying graph is never
        # mutated: dead stacks and dead/degraded links are tracked here and
        # filtered out (or scaled) by the routing/bandwidth queries.
        self._down_stacks: set[StackRef] = set()
        self._link_health: dict[frozenset, float] = {}
        # Route memoization.  Enumerating minimum-hop routes walks the
        # networkx graph (shortest_path_length + all_simple_paths) — the
        # dominant cost of P2P sweeps — yet the answer only changes when
        # the topology or the health overlay does, so every mutator
        # bumps ``_route_generation`` and drops the caches.
        self._route_generation = 0
        self._route_cache: dict[tuple, list[Route]] = {}
        self._hops_cache: dict[tuple, int] = {}
        # Optional telemetry hook: called as fn(src, dst, route) on every
        # routing decision.  Must not call route() back (re-entrancy).
        self._observer = None

    def _invalidate_routes(self) -> None:
        self._route_generation += 1
        self._route_cache.clear()
        self._hops_cache.clear()

    def set_observer(self, fn) -> None:
        """Install (or clear, with None) the routing-decision observer."""
        self._observer = fn

    # -- construction -------------------------------------------------

    def add_host(self, socket: int) -> None:
        self._g.add_node((HOST, socket))

    def add_stack(self, ref: StackRef) -> None:
        self._g.add_node(ref)

    def connect(self, a, b, link: Link) -> None:
        if a not in self._g or b not in self._g:
            raise TopologyError(f"unknown endpoint in {a} -- {b}")
        self._g.add_edge(a, b, link=link)
        self._invalidate_routes()

    def set_planes(self, planes: Sequence[Iterable[StackRef]]) -> None:
        self._planes = tuple(frozenset(p) for p in planes)

    # -- health overlay (fault injection) -------------------------------

    def set_stack_down(self, ref: StackRef) -> None:
        """Mark a stack as lost: it disappears from routing and enumeration."""
        if ref not in self._g:
            raise TopologyError(f"unknown stack {ref}")
        self._down_stacks.add(ref)
        self._invalidate_routes()

    def revive_stack(self, ref: StackRef) -> None:
        self._down_stacks.discard(ref)
        self._invalidate_routes()

    def is_down(self, ref) -> bool:
        return ref in self._down_stacks

    def set_link_health(self, a, b, factor: float) -> None:
        """Scale a link's bandwidth: 1.0 healthy, 0.0 outage."""
        if self.link_between(a, b) is None:
            raise TopologyError(f"no link {a} -- {b}")
        if not (0.0 <= factor <= 1.0):
            raise TopologyError(f"bad link health {factor}")
        self._link_health[frozenset((a, b))] = factor
        self._invalidate_routes()

    def set_plane_health(self, plane_index: int, factor: float) -> None:
        """Degrade (or kill, factor=0) every Xe-Link edge inside a plane."""
        try:
            plane = self._planes[plane_index]
        except IndexError:
            raise TopologyError(f"no plane {plane_index}") from None
        for a, b in itertools.combinations(sorted(plane), 2):
            link = self.link_between(a, b)
            if link is not None and link.kind is LinkKind.XELINK:
                self.set_link_health(a, b, factor)

    def link_health(self, a, b) -> float:
        return self._link_health.get(frozenset((a, b)), 1.0)

    def reset_health(self) -> None:
        self._down_stacks.clear()
        self._link_health.clear()
        self._invalidate_routes()

    @property
    def has_degradation(self) -> bool:
        return bool(self._down_stacks) or any(
            f < 1.0 for f in self._link_health.values()
        )

    @property
    def down_stacks(self) -> list[StackRef]:
        return sorted(self._down_stacks)

    @property
    def degraded_links(self) -> list[tuple[object, object, float]]:
        """(a, b, health) for every link whose health is below 1.0."""
        out = []
        for key, health in self._link_health.items():
            if health < 1.0:
                a, b = sorted(key, key=str)
                out.append((a, b, health))
        return sorted(out, key=lambda t: (str(t[0]), str(t[1])))

    def _alive_view(self, nodes: Iterable) -> "nx.Graph":
        """Subgraph over *nodes* excluding dead stacks and dead links."""
        keep = [n for n in nodes if n not in self._down_stacks]
        view = self._g.subgraph(keep)
        dead_edges = [
            tuple(key)
            for key, health in self._link_health.items()
            if health == 0.0
        ]
        if not dead_edges:
            return view
        return nx.restricted_view(view, [], dead_edges)

    # -- queries --------------------------------------------------------

    @property
    def stacks(self) -> list[StackRef]:
        return sorted(n for n in self._g.nodes if isinstance(n, StackRef))

    @property
    def alive_stacks(self) -> list[StackRef]:
        return [s for s in self.stacks if s not in self._down_stacks]

    @property
    def planes(self) -> tuple[frozenset[StackRef], ...]:
        return self._planes

    def plane_of(self, ref: StackRef) -> int:
        for i, plane in enumerate(self._planes):
            if ref in plane:
                return i
        raise TopologyError(f"{ref} is not in any plane")

    def same_plane(self, a: StackRef, b: StackRef) -> bool:
        return self.plane_of(a) == self.plane_of(b)

    def link_between(self, a, b) -> Link | None:
        data = self._g.get_edge_data(a, b)
        return None if data is None else data["link"]

    def _as_route(self, nodes: Sequence) -> Route:
        hops = []
        for u, v in zip(nodes, nodes[1:]):
            link = self.link_between(u, v)
            if link is None:  # pragma: no cover - guarded by nx paths
                raise TopologyError(f"no link {u} -- {v}")
            hops.append((u, v, link))
        return Route(tuple(hops))

    def routes(self, src, dst) -> list[Route]:
        """All minimum-hop routes (plus ties) from *src* to *dst*.

        Device-to-device routes never detour through a host socket (the
        driver moves GPU buffers over the GPU fabric); for cross-plane PVC
        stack pairs this returns exactly the two 2-hop alternatives the
        paper describes.
        """
        if src == dst:
            raise TopologyError("src == dst")
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return list(cached)
        nodes = self._g.nodes
        if isinstance(src, StackRef) and isinstance(dst, StackRef):
            nodes = [n for n in self._g.nodes if isinstance(n, StackRef)]
        graph = self._alive_view(nodes)
        try:
            shortest = nx.shortest_path_length(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise TopologyError(f"no route {src} -> {dst}") from None
        routes = [
            self._as_route(p)
            for p in nx.all_simple_paths(graph, src, dst, cutoff=shortest)
            if len(p) - 1 == shortest
        ]
        routes.sort(key=lambda r: (r.n_hops, r.describe()))
        if not routes:  # pragma: no cover
            raise TopologyError(f"no route {src} -> {dst}")
        self._route_cache[(src, dst)] = routes
        return list(routes)

    def route(self, src, dst) -> Route:
        """A deterministic best (minimum-hop, lexicographically first) route."""
        route = self.routes(src, dst)[0]
        if self._observer is not None:
            self._observer(src, dst, route)
        return route

    def healthy_hops(self, src, dst) -> int:
        """Minimum hop count ignoring the health overlay.

        The degraded-routing model compares the current route against this
        baseline: extra hops forced by dead links cost relay efficiency.
        """
        cached = self._hops_cache.get((src, dst))
        if cached is not None:
            return cached
        nodes = self._g.nodes
        if isinstance(src, StackRef) and isinstance(dst, StackRef):
            nodes = [n for n in self._g.nodes if isinstance(n, StackRef)]
        try:
            hops = nx.shortest_path_length(self._g.subgraph(nodes), src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise TopologyError(f"no route {src} -> {dst}") from None
        self._hops_cache[(src, dst)] = hops
        return hops

    def is_route_degraded(self, src, dst) -> bool:
        """True when the best live route is longer than the healthy route
        or crosses a bandwidth-degraded link."""
        if not self.has_degradation:
            return False
        route = self.route(src, dst)  # raises TopologyError if unroutable
        if route.n_hops > self.healthy_hops(src, dst):
            return True
        return any(self.link_health(u, v) < 1.0 for u, v, _ in route.hops)

    def host_route(self, socket: int, ref: StackRef) -> Route:
        """Route from a host socket to a stack (via PCIe, + MDFI if needed)."""
        return self.route((HOST, socket), ref)

    def degree(self, node) -> int:
        return self._g.degree[node]

    def xelink_neighbors(self, ref: StackRef) -> list[StackRef]:
        out = []
        for nbr in self._g.neighbors(ref):
            link = self.link_between(ref, nbr)
            if link is not None and link.kind is LinkKind.XELINK:
                out.append(nbr)
        return sorted(out)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def aurora_planes() -> list[list[StackRef]]:
    """The Aurora Xe-Link plane assignment quoted verbatim in Section IV-A."""
    plane_a = ["0.0", "1.1", "2.0", "3.0", "4.0", "5.1"]
    plane_b = ["0.1", "1.0", "2.1", "3.1", "4.1", "5.0"]
    from .ids import parse_stack_ref

    return [[parse_stack_ref(s) for s in plane_a],
            [parse_stack_ref(s) for s in plane_b]]


def parity_planes(n_cards: int) -> list[list[StackRef]]:
    """A generic two-plane assignment for systems whose exact wiring the
    paper does not publish (Dawn): alternate stacks by card parity."""
    plane_a, plane_b = [], []
    for card in range(n_cards):
        first, second = StackRef(card, 0), StackRef(card, 1)
        if card % 2 == 0:
            plane_a.append(first)
            plane_b.append(second)
        else:
            plane_a.append(second)
            plane_b.append(first)
    return [plane_a, plane_b]


def build_pvc_fabric(
    n_cards: int,
    socket_of_card: Sequence[int],
    planes: Sequence[Iterable[StackRef]] | None = None,
    pcie: LinkKind = LinkKind.PCIE_GEN5_X16,
) -> Fabric:
    """Fabric for a PVC node: per-card PCIe on stack 0, MDFI between
    siblings, all-to-all Xe-Link within each plane."""
    if len(socket_of_card) != n_cards:
        raise TopologyError("socket_of_card length mismatch")
    fabric = Fabric()
    for socket in sorted(set(socket_of_card)):
        fabric.add_host(socket)
    for card in range(n_cards):
        s0, s1 = StackRef(card, 0), StackRef(card, 1)
        fabric.add_stack(s0)
        fabric.add_stack(s1)
        fabric.connect((HOST, socket_of_card[card]), s0, Link(pcie))
        fabric.connect(s0, s1, Link(LinkKind.MDFI, latency_s=0.5e-6))
    if planes is None:
        planes = parity_planes(n_cards)
    fabric.set_planes(planes)
    for plane in fabric.planes:
        for a, b in itertools.combinations(sorted(plane), 2):
            fabric.connect(a, b, Link(LinkKind.XELINK, latency_s=1.5e-6))
    return fabric


def build_single_device_fabric(
    n_cards: int,
    socket_of_card: Sequence[int],
    pcie: LinkKind,
    gpu_link: LinkKind,
) -> Fabric:
    """Fabric for single-device cards (H100 node): PCIe per GPU plus an
    all-to-all GPU link (NVLink/NVSwitch abstracted as direct links)."""
    fabric = Fabric()
    for socket in sorted(set(socket_of_card)):
        fabric.add_host(socket)
    refs = [StackRef(card, 0) for card in range(n_cards)]
    for card, ref in enumerate(refs):
        fabric.add_stack(ref)
        fabric.connect((HOST, socket_of_card[card]), ref, Link(pcie))
    for a, b in itertools.combinations(refs, 2):
        fabric.connect(a, b, Link(gpu_link, latency_s=1.0e-6))
    fabric.set_planes([refs])
    return fabric


def build_dual_gcd_fabric(
    n_cards: int,
    socket_of_card: Sequence[int],
    pcie: LinkKind = LinkKind.PCIE_GEN4_X16,
) -> Fabric:
    """Fabric for the MI250 node: each card's GCD 0 on PCIe, Infinity
    Fabric between sibling GCDs and xGMI between cards."""
    fabric = Fabric()
    for socket in sorted(set(socket_of_card)):
        fabric.add_host(socket)
    for card in range(n_cards):
        g0, g1 = StackRef(card, 0), StackRef(card, 1)
        fabric.add_stack(g0)
        fabric.add_stack(g1)
        fabric.connect((HOST, socket_of_card[card]), g0, Link(pcie))
        fabric.connect(g0, g1, Link(LinkKind.INFINITY_FABRIC, latency_s=1.0e-6))
    for a, b in itertools.combinations(range(n_cards), 2):
        fabric.connect(
            StackRef(a, 0), StackRef(b, 0), Link(LinkKind.XGMI, latency_s=1.5e-6)
        )
    fabric.set_planes(parity_planes(n_cards))
    return fabric
