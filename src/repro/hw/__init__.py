"""Hardware models: PVC architecture, reference GPUs, CPUs, nodes, fabric."""

from .cpu import CpuSocket, epyc_7713, xeon_gold_5320_max, xeon_platinum_8468
from .frequency import FrequencyModel, WorkloadKind
from .gpu import (
    DeviceModel,
    GpuCardModel,
    h100_sxm5_device,
    mi250_gcd_device,
    pvc_stack_device,
)
from .extensions import (
    EXTENSION_SYSTEMS,
    frontier,
    get_extension_system,
    jlse_a100,
)
from .ids import StackRef, parse_stack_ref
from .interconnect import Fabric, Link, LinkKind, Route, aurora_planes
from .memory import MemoryHierarchy, MemoryLevel
from .node import Node
from .selfcheck import CheckResult, self_check
from .spec import MatrixEngine, PVCCard, VectorEngine, XeCore, XeSlice, XeStack
from .systems import (
    SYSTEM_NAMES,
    System,
    all_systems,
    aurora,
    dawn,
    get_system,
    jlse_h100,
    jlse_mi250,
)

__all__ = [
    "CpuSocket",
    "epyc_7713",
    "xeon_gold_5320_max",
    "xeon_platinum_8468",
    "FrequencyModel",
    "WorkloadKind",
    "DeviceModel",
    "GpuCardModel",
    "h100_sxm5_device",
    "mi250_gcd_device",
    "pvc_stack_device",
    "EXTENSION_SYSTEMS",
    "frontier",
    "get_extension_system",
    "jlse_a100",
    "StackRef",
    "parse_stack_ref",
    "Fabric",
    "Link",
    "LinkKind",
    "Route",
    "aurora_planes",
    "MemoryHierarchy",
    "MemoryLevel",
    "Node",
    "CheckResult",
    "self_check",
    "MatrixEngine",
    "PVCCard",
    "VectorEngine",
    "XeCore",
    "XeSlice",
    "XeStack",
    "SYSTEM_NAMES",
    "System",
    "all_systems",
    "aurora",
    "dawn",
    "get_system",
    "jlse_h100",
    "jlse_mi250",
]
