"""TDP / DVFS frequency model.

Section IV-B.2 is the paper's key frequency observation: although PVC is
specified with equal FP32 and FP64 throughput, the measured FP32:FP64 flops
ratio is ~1.3x because the GPU downclocks to ~1.2 GHz for FP64 FMA chains
(TDP) while sustaining ~1.6 GHz for FP32.  Aurora additionally pins the
idle frequency at 1.6 GHz and power-caps each card at 500 W (vs Dawn's
600 W operational cap).

The model exposes a sustained clock per (precision, workload kind).  GEMM
workloads may sustain a slightly different clock than raw FMA chains — the
paper leaves the DGEMM efficiency drop "currently unexplained" and we keep
that effect inside the calibrated GEMM efficiencies instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..dtypes import Precision

__all__ = ["WorkloadKind", "FrequencyModel"]


class WorkloadKind(enum.Enum):
    """Workload classes that draw different power envelopes."""

    FMA_CHAIN = "fma-chain"
    GEMM = "gemm"
    STREAM = "stream"
    IDLE = "idle"


@dataclass(frozen=True, slots=True)
class FrequencyModel:
    """Sustained clocks under a TDP cap.

    Parameters
    ----------
    max_hz:
        Nameplate maximum clock.
    fp64_fma_hz:
        Sustained clock while retiring back-to-back FP64 FMAs (TDP-bound).
    idle_hz:
        Idle/default clock (Aurora pins this to ``max_hz``; Dawn lets the
        card clock down when idle).
    power_cap_w:
        Card-level power cap (600 W on Dawn, 500 W on Aurora) — recorded
        for reporting; its throughput consequence is already captured by
        ``fp64_fma_hz``.
    """

    max_hz: float
    fp64_fma_hz: float | None = None
    idle_hz: float | None = None
    power_cap_w: float | None = None
    #: Sustained clock for memory-streaming kernels (defaults to max).
    stream_hz: float | None = None
    _overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_hz <= 0:
            raise ValueError("max_hz must be positive")
        if self.fp64_fma_hz is not None and self.fp64_fma_hz > self.max_hz:
            raise ValueError("fp64_fma_hz cannot exceed max_hz")

    def sustained_hz(
        self,
        precision: Precision | None = None,
        kind: WorkloadKind = WorkloadKind.FMA_CHAIN,
    ) -> float:
        """Sustained clock for a workload.

        FP64 FMA chains (and FP64 GEMM inner loops) run at the TDP-limited
        clock; everything else sustains the maximum clock in this model.
        """
        key = (precision, kind)
        if key in self._overrides:
            return self._overrides[key]
        if kind is WorkloadKind.IDLE:
            return self.idle_hz if self.idle_hz is not None else self.max_hz
        if kind is WorkloadKind.STREAM and self.stream_hz is not None:
            return self.stream_hz
        if (
            precision is Precision.FP64
            and kind in (WorkloadKind.FMA_CHAIN, WorkloadKind.GEMM)
            and self.fp64_fma_hz is not None
        ):
            return self.fp64_fma_hz
        return self.max_hz

    def throttled(self, ratio: float) -> "FrequencyModel":
        """A copy of this model during a DVFS throttle excursion.

        Every clock is scaled by ``ratio`` (0 < ratio <= 1).  The fault
        injector uses this to present the effective clocks of a thermally
        throttled stack in health reports; the performance engine applies
        the same ratio directly to its sustained rates.
        """
        if not (0.0 < ratio <= 1.0):
            raise ValueError(f"throttle ratio must be in (0, 1]: {ratio}")
        return FrequencyModel(
            max_hz=self.max_hz * ratio,
            fp64_fma_hz=(
                None if self.fp64_fma_hz is None else self.fp64_fma_hz * ratio
            ),
            idle_hz=None if self.idle_hz is None else self.idle_hz * ratio,
            power_cap_w=self.power_cap_w,
            stream_hz=None if self.stream_hz is None else self.stream_hz * ratio,
            _overrides={key: hz * ratio for key, hz in self._overrides.items()},
        )

    def downclock_ratio(self, precision: Precision) -> float:
        """``sustained(precision) / max`` for FMA chains.

        For PVC FP64 this is 1.2/1.6 = 0.75 — the origin of the paper's
        observed FP32:FP64 = 1.3x flops ratio.
        """
        return self.sustained_hz(precision, WorkloadKind.FMA_CHAIN) / self.max_hz
