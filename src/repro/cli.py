"""``pvc-bench`` command-line interface.

Mirrors the artifact's run scripts::

    pvc-bench table2            # Tables II  (microbenchmarks)
    pvc-bench table3            # Table III  (P2P)
    pvc-bench table4            # Table IV   (reference GPUs)
    pvc-bench table6            # Table VI   (mini-app / app FOMs)
    pvc-bench fig1              # memory-latency curves
    pvc-bench fig2 | fig3 | fig4
    pvc-bench claims            # every checked prose claim
    pvc-bench systems           # node inventories

Chaos testing (deterministic fault injection)::

    pvc-bench table2 --inject device-loss --seed 0
    pvc-bench health --inject plane-outage --seed 3

Exit codes under injection: 0 = clean, 1 = degraded cells (faults were
absorbed), 2 = failed cells or a fatal error.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    all_claims,
    full_report,
    figure1,
    figure2,
    figure3,
    figure4,
    table_i,
    table_ii,
    table_iii,
    table_iv,
    table_v,
    table_vi,
)
from .errors import ReproError
from .faults import SCENARIO_NAMES, ExecutionContext
from .hw.systems import all_systems

__all__ = ["main"]


def _print_ratio_points(points, title: str) -> None:
    print(title)
    print("-" * 72)
    for p in points:
        measured = "-" if p.ratio is None else f"{p.ratio:5.2f}x"
        expected = (
            "(no bar)" if p.expected.ratio is None else f"expected {p.expected.ratio:5.2f}x"
        )
        flag = ""
        if p.within_expectation is True:
            flag = "  [as expected]"
        elif p.within_expectation is False:
            flag = "  [deviates]"
        print(f"{p.app:22s} {p.scope:10s} {measured}  {expected}{flag}")


def _cmd_fig1() -> None:
    for series in figure1():
        print(f"# {series.system}")
        for size, cycles in zip(series.sizes_bytes, series.latency_cycles):
            print(f"{int(size):>12d} B  {cycles:8.1f} cycles")
        print()


def _cmd_claims() -> None:
    ok = 0
    claims = all_claims()
    for c in claims:
        mark = "PASS" if c.holds else "FAIL"
        ok += c.holds
        print(f"[{mark}] {c.name}: paper {c.paper}; simulated {c.simulated}")
    print(f"\n{ok}/{len(claims)} claims hold")


def _cmd_systems() -> None:
    for system in all_systems():
        print(system.node.describe())
        print(f"    software: {system.software}")


def _cmd_health(ctx: ExecutionContext) -> None:
    from .core.result import CellStatus
    from .hw.selfcheck import node_health
    from .hw.systems import get_system

    for name in ("aurora", "dawn"):
        if ctx.active:
            engine = ctx.engine(name)
            injector = engine.faults
            injector.fast_forward()
            report = node_health(engine.system, injector)
            if not report.healthy:
                ctx.record(CellStatus.DEGRADED)
        else:
            report = node_health(get_system(name))
        print(report.render())
        print()


def _cmd_selfcheck() -> None:
    from .hw.extensions import frontier, jlse_a100
    from .hw.selfcheck import self_check
    from .hw.systems import all_systems

    ok = total = 0
    for system in all_systems() + [frontier(), jlse_a100()]:
        for check in self_check(system):
            total += 1
            ok += check.passed
            mark = "ok " if check.passed else "FAIL"
            print(f"[{mark}] {system.name:12s} {check.name}"
                  + (f"  ({check.detail})" if check.detail else ""))
    print(f"\n{ok}/{total} checks pass")


def _cmd_scaling() -> None:
    from .analysis.scaling_study import app_scaling, micro_scaling
    from .hw.systems import get_system
    from .sim.engine import PerfEngine
    from .sim.noise import QUIET

    for name in ("aurora", "dawn"):
        engine = PerfEngine(get_system(name), noise=QUIET)
        print(f"# {name}")
        for study in micro_scaling(engine) + app_scaling(engine):
            knee = study.knee(0.9)
            print(
                f"  {study.name:12s} full-node eff {study.full_node_efficiency:6.1%}"
                + (f"  (drops below 90% at {knee} stacks)" if knee else "")
            )


def _cmd_roofline() -> None:
    from .analysis.roofline_data import paper_kernels, roofline_series
    from .dtypes import Precision
    from .hw.systems import get_system
    from .sim.engine import PerfEngine
    from .sim.noise import QUIET

    for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250"):
        engine = PerfEngine(get_system(name), noise=QUIET)
        series = roofline_series(engine, Precision.FP64)
        print(
            f"{name:12s} roof {series.compute_roof / 1e12:6.1f} TFlop/s  "
            f"slope {series.memory_slope / 1e12:5.2f} TB/s  "
            f"ridge {series.ridge_intensity:5.1f} flop/B"
        )
        for point in paper_kernels(engine):
            print(
                f"    {point.name:22s} AI {point.intensity:8.2f}  "
                f"{point.achieved / 1e12:6.2f} TFlop/s  [{point.bound}]"
            )


def _cmd_top500() -> None:
    from .extras.hpcg import HpcgModel, HplModel
    from .hw.systems import get_system
    from .sim.engine import PerfEngine
    from .sim.noise import QUIET

    print(f"{'system':14s} {'HPL/node':>12s} {'HPCG/node':>12s} {'HPCG/HPL':>9s}")
    for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250"):
        engine = PerfEngine(get_system(name), noise=QUIET)
        hpl = HplModel(engine).node_rate()
        hpcg = HpcgModel(engine).node_rate()
        print(
            f"{name:14s} {hpl / 1e12:9.1f} TF {hpcg / 1e12:9.2f} TF"
            f" {hpcg / hpl:8.1%}"
        )


# Commands that honour --inject take the execution context; the rest are
# zero-arg and run exactly as before.
_CTX_COMMANDS = {
    "table2": lambda ctx: print(table_ii(ctx=ctx).render()),
    "table3": lambda ctx: print(table_iii(ctx=ctx).render()),
    "table6": lambda ctx: print(table_vi(ctx=ctx).render()),
    "report": lambda ctx: print(full_report(ctx)),
    "health": _cmd_health,
}

_COMMANDS = {
    "table1": lambda: print(table_i()),
    "table4": lambda: print(table_iv().render()),
    "table5": lambda: print(table_v()),
    "fig1": _cmd_fig1,
    "fig2": lambda: _print_ratio_points(
        figure2(), "Figure 2: FOMs on Aurora relative to Dawn"
    ),
    "fig3": lambda: _print_ratio_points(
        figure3(), "Figure 3: FOMs relative to JLSE-H100"
    ),
    "fig4": lambda: _print_ratio_points(
        figure4(), "Figure 4: FOMs relative to JLSE-MI250"
    ),
    "claims": _cmd_claims,
    "systems": _cmd_systems,
    "roofline": _cmd_roofline,
    "top500": _cmd_top500,
    "selfcheck": _cmd_selfcheck,
    "scaling": _cmd_scaling,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pvc-bench",
        description="Regenerate the paper's tables and figures on the "
        "simulated substrate.",
    )
    parser.add_argument(
        "command", choices=sorted(_COMMANDS) + sorted(_CTX_COMMANDS)
    )
    parser.add_argument(
        "--inject",
        metavar="SCENARIO",
        default=None,
        help="inject a deterministic fault scenario "
        f"({', '.join(SCENARIO_NAMES)})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the fault schedule (default: 0)",
    )
    args = parser.parse_args(argv)
    try:
        ctx = ExecutionContext(args.inject, args.seed)
        if args.command in _CTX_COMMANDS:
            _CTX_COMMANDS[args.command](ctx)
        else:
            if ctx.active:
                print(
                    f"pvc-bench: note: {args.command} ignores --inject",
                    file=sys.stderr,
                )
            _COMMANDS[args.command]()
    except ReproError as exc:
        print(f"pvc-bench: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    return ctx.exit_code()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
