"""``pvc-bench`` command-line interface.

Mirrors the artifact's run scripts::

    pvc-bench table2            # Tables II  (microbenchmarks)
    pvc-bench table3            # Table III  (P2P)
    pvc-bench table4            # Table IV   (reference GPUs)
    pvc-bench table6            # Table VI   (mini-app / app FOMs)
    pvc-bench fig1              # memory-latency curves
    pvc-bench fig2 | fig3 | fig4
    pvc-bench claims            # every checked prose claim
    pvc-bench systems           # node inventories

Chaos testing (deterministic fault injection)::

    pvc-bench table2 --inject device-loss --seed 0
    pvc-bench health --inject plane-outage --seed 3

Telemetry (span traces, metrics, run manifests)::

    pvc-bench trace gemm --out trace.json          # Perfetto timeline
    pvc-bench trace gemm --inject device-loss --seed 7 --out t.json
    pvc-bench metrics triad                        # Prometheus text
    pvc-bench table2 --manifest run.json           # run manifest rider

Profiling (iprof-style API summaries, roofline attribution, baselines)::

    pvc-bench profile gemm --system aurora         # iprof-style tables
    pvc-bench profile smoke --write-baseline BENCH_0.json
    pvc-bench profile smoke --baseline BENCH_0.json   # regression gate
    pvc-bench profile full --baseline BENCH_1.json    # + campaign/sim-cache
    pvc-bench profile triad --flamegraph out.collapsed
    pvc-bench table2 --profile --manifest run.json # profile digest rider

Crash-safe campaigns (write-ahead journal + checkpoint/resume)::

    pvc-bench campaign run    --dir out --spec paper
    pvc-bench campaign run    --dir out --spec smoke --inject crash-midrun
    pvc-bench campaign run    --dir out --spec smoke --jobs 4 \\
        --inject worker-kill --max-respawns 8      # self-healing pool
    pvc-bench campaign resume --dir out
    pvc-bench campaign status --dir out
    pvc-bench campaign verify --dir out

Live observability (event streams, watch board, exporters, trend)::

    pvc-bench campaign watch out                   # live status board
    pvc-bench obs export out --out trace.json      # Perfetto timeline
    pvc-bench obs serve out --port 9100            # OpenMetrics exporter
    pvc-bench trend BENCH_0.json BENCH_1.json      # cross-run analytics

Design-space sweeps (vectorized batch evaluation, million-point grids)::

    pvc-bench sweep million --dir out              # >= 10^6 points
    pvc-bench sweep ci --dir out --jobs 4 --ndjson # sharded, full dump
    pvc-bench sweep myspace.json --top-k 32        # custom JSON spec
    pvc-bench profile sweep --baseline BENCH_3.json   # points/s gate

Service observability (trace propagation, RED/SLO, live board)::

    pvc-bench serve-bench --dir state --port 8080 --slo-latency 2.0
    pvc-bench loadgen --port 8080 --requests 200 --tenants 4
    pvc-bench service watch --port 8080            # live service board
    pvc-bench service watch state --once           # offline fold
    pvc-bench profile service --baseline BENCH_2.json  # storm p99 gate

Exit codes (see ``repro.exitcodes``): 0 = clean, 1 = degraded cells or a
measurement failure, 2 = failed cells or a fatal error, 3 = interrupted
but resumable (``campaign resume`` finishes it), 4 = corrupt journal or
result store.  With ``--manifest`` the exit code is always accompanied
by a machine-readable manifest binding config, metrics and incident
provenance.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    all_claims,
    full_report,
    render_figure,
    table_i,
    table_ii,
    table_iii,
    table_iv,
    table_v,
    table_vi,
)
from .campaign.spec import SPEC_NAMES
from .errors import ReproError, UnknownBenchmarkError
from .exitcodes import ExitCode, classify_error
from .faults import (
    CAMPAIGN_SCENARIO_NAMES,
    SCENARIO_NAMES,
    WORKER_SCENARIO_NAMES,
    ExecutionContext,
)
from .hw.systems import all_systems

__all__ = ["main"]

#: Benchmarks the ``trace`` / ``metrics`` commands can run.  The plan is
#: long enough (warmup + 30 reps = 32 injector ticks) that every fault
#: scenario's trigger tick falls inside the run.
_TELEMETRY_BENCHES = ("gemm", "triad", "p2p")


def _run_instrumented(ctx: ExecutionContext, args) -> None:
    """Run one benchmark with the full telemetry session attached."""
    from .profiler.driver import run_bench

    result = run_bench(ctx, args.bench, args.system)
    best = result.best
    print(
        f"# {args.bench} on {args.system} [{result.scope.name}]: "
        f"best {best.work / best.elapsed_s:.4g} {best.unit} "
        f"over {len(result.samples)} samples",
        file=sys.stderr,
    )


def _cmd_profile(args) -> int:
    """``pvc-bench profile <bench>|smoke`` — iprof-style summaries.

    Prints one iprof-style report per profiled run; optional riders
    export a collapsed-stack flamegraph, the raw profile documents, and
    write/compare perf-regression baselines (a regression raises the
    exit code to the MEASUREMENT tier).
    """
    from .ioutils import atomic_write_text
    from .profiler.baseline import (
        build_snapshot,
        compare_snapshots,
        load_baseline,
        write_baseline,
    )
    from .profiler.driver import (
        profile_bench,
        profile_campaign_set,
        profile_smoke_set,
    )
    from .profiler.flamegraph import collapsed_stacks

    if args.bench == "service":
        return _cmd_profile_service(args)
    if args.bench == "sweep":
        return _cmd_profile_sweep(args)
    campaign_entries: list[dict] = []
    if args.bench in ("smoke", "full"):
        runs = profile_smoke_set(scenario=args.inject, seed=args.seed)
        if args.bench == "full":
            # The campaign benchmark matrix: wall-clock at jobs 1 and 4
            # plus the sim memo cache's hit rate (a gated field).
            campaign_entries = profile_campaign_set()
    else:
        runs = [
            profile_bench(
                args.bench, args.system, scenario=args.inject, seed=args.seed
            )
        ]
    for run in runs:
        print(run.report())
    code = max(int(run.ctx.exit_code()) for run in runs)
    if args.flamegraph:
        # Per-run collapsed stacks, each frame path prefixed with the
        # run's identity so the smoke set folds into one flamegraph.
        lines: list[str] = []
        for run in runs:
            lines.extend(
                f"{run.bench}@{run.system};{line}"
                for line in collapsed_stacks(run.telemetry.tracer)
            )
        atomic_write_text(args.flamegraph, "\n".join(sorted(lines)) + "\n")
        print(f"flamegraph written to {args.flamegraph}", file=sys.stderr)
    if args.out:
        import json

        doc = {
            "schema": "repro.profiler.profileset/v1",
            "profiles": {
                f"{run.bench}@{run.system}": run.profiler.to_doc()
                for run in runs
            },
        }
        atomic_write_text(
            args.out, json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"profile written to {args.out}", file=sys.stderr)
    for entry in campaign_entries:
        rate = entry["sim_cache_hit_rate"]
        print(
            f"{entry['bench']}@{entry['system']}: {entry['units']} unit(s) "
            f"in {entry['wall_s']:.2f}s wall, sim-cache hit rate "
            f"{rate:.1%}"
        )
    snapshot = build_snapshot(
        [run.entry() for run in runs] + campaign_entries
    )
    if args.write_baseline:
        write_baseline(args.write_baseline, snapshot)
        print(f"baseline written to {args.write_baseline}", file=sys.stderr)
    if args.baseline:
        comparison = compare_snapshots(load_baseline(args.baseline), snapshot)
        print(comparison.render(), end="")
        if comparison.regressed:
            code = max(code, int(ExitCode.MEASUREMENT))
    if args.manifest is not None:
        if len(runs) == 1:
            from .telemetry.manifest import write_manifest

            write_manifest(args.manifest, runs[0].ctx.manifest("profile"))
            print(f"manifest written to {args.manifest}", file=sys.stderr)
        else:
            print(
                "pvc-bench: note: --manifest applies to single-bench "
                "profiles only",
                file=sys.stderr,
            )
    return code


def _cmd_profile_service(args) -> int:
    """``pvc-bench profile service`` — the storm benchmark.

    Boots a throwaway daemon over a temp state directory, runs the
    standard warm-then-storm load, and gates the storm p99 latency and
    the service cache hit rate against ``BENCH_2.json``-style
    baselines.  Wall-clock latencies are machine-dependent, so the
    snapshot is written with a wide (50%) tolerance; the hit-rate gate
    is exact in practice because the warm pass makes 1.0 the expected
    value.
    """
    import shutil
    import tempfile

    from .profiler.baseline import (
        build_snapshot,
        compare_snapshots,
        load_baseline,
        write_baseline,
    )
    from .service.loadgen import service_benchmark_entries

    root = tempfile.mkdtemp(prefix="repro-profile-service-")
    try:
        entries = service_benchmark_entries(
            root,
            requests=getattr(args, "requests", None) or 64,
            concurrency=getattr(args, "concurrency", None) or 8,
            distinct=getattr(args, "distinct", None) or 4,
            seed=args.seed,
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    code = 0
    for entry in entries:
        print(
            f"{entry['bench']}@{entry['system']}: {entry['completed']}/"
            f"{entry['requests']} done in {entry['wall_s']:.2f}s wall, "
            f"storm p99 {entry['storm_p99_s'] * 1e3:.1f}ms, cache hit "
            f"rate {entry['service_cache_hit_rate']:.1%}"
        )
    snapshot = build_snapshot(entries, tolerance=0.5)
    if args.write_baseline:
        write_baseline(args.write_baseline, snapshot)
        print(f"baseline written to {args.write_baseline}", file=sys.stderr)
    if args.baseline:
        comparison = compare_snapshots(load_baseline(args.baseline), snapshot)
        print(comparison.render(), end="")
        if comparison.regressed:
            code = max(code, int(ExitCode.MEASUREMENT))
    return code


def _cmd_profile_sweep(args) -> int:
    """``pvc-bench profile sweep`` — the design-space throughput gate.

    Runs the ~138k-point ``ci`` sweep through the batch engine, samples
    the scalar golden reference for bit-for-bit agreement and the
    points-per-second speedup, and gates both throughput figures
    against ``BENCH_3.json``-style baselines.  Beyond the relative
    baseline gate there is a hard floor: the batch path must beat the
    scalar path by :data:`~repro.sweep.runner.SPEEDUP_FLOOR` (50x) or
    the profile fails outright — a slow batch path defeats the whole
    subsystem even on a machine with no baseline to compare against.
    """
    from .profiler.baseline import (
        build_snapshot,
        compare_snapshots,
        load_baseline,
        write_baseline,
    )
    from .sweep.runner import SPEEDUP_FLOOR, sweep_benchmark_entries

    entries = sweep_benchmark_entries(jobs=args.jobs or 1)
    code = 0
    for entry in entries:
        speedup = entry["batch_speedup"] or 0.0
        print(
            f"{entry['bench']}@{entry['system']}: {entry['points']:,} "
            f"points in {entry['wall_s']:.3f}s "
            f"({entry['points_per_s'] / 1e6:.1f} M points/s, "
            f"x{speedup:.0f} vs scalar over {entry['verified_sample']} "
            f"verified sample point(s))"
        )
        if speedup < SPEEDUP_FLOOR:
            print(
                f"pvc-bench: sweep speedup x{speedup:.1f} is below the "
                f"x{SPEEDUP_FLOOR:.0f} floor",
                file=sys.stderr,
            )
            code = max(code, int(ExitCode.MEASUREMENT))
    # Throughput figures are wall-clock; the snapshot uses the same
    # wide tolerance as the service storm gate.
    snapshot = build_snapshot(entries, tolerance=0.5)
    if args.write_baseline:
        write_baseline(args.write_baseline, snapshot)
        print(f"baseline written to {args.write_baseline}", file=sys.stderr)
    if args.baseline:
        comparison = compare_snapshots(load_baseline(args.baseline), snapshot)
        print(comparison.render(), end="")
        if comparison.regressed:
            code = max(code, int(ExitCode.MEASUREMENT))
    return code


def _cmd_trace(ctx: ExecutionContext, args) -> None:
    _run_instrumented(ctx, args)
    doc = ctx.telemetry.tracer.export_json()
    if args.out:
        from .ioutils import atomic_write_text

        atomic_write_text(args.out, doc + "\n")
        ctx.trace_files.append(args.out)
        print(f"trace written to {args.out}", file=sys.stderr)
    else:
        print(doc)
    print(ctx.telemetry_summary(), file=sys.stderr)


#: Counters always present in the ``metrics`` scrape, even at zero:
#: dashboards alert on their absence, so a run that never touched the
#: sim cache or never respawned a worker still exports the series.
_DECLARED_COUNTERS = (
    ("simcache.hit", "sim memo cache hits"),
    ("simcache.miss", "sim memo cache misses"),
    ("simcache.bypass", "sim memo cache bypasses (uncacheable plans)"),
    ("worker.respawns", "campaign workers respawned by the supervisor"),
    ("unit.quarantined", "campaign units quarantined as poison"),
    ("scheduler.degraded", "campaigns degraded to in-process draining"),
)


def _cmd_metrics(ctx: ExecutionContext, args) -> None:
    _run_instrumented(ctx, args)
    for name, help_text in _DECLARED_COUNTERS:
        ctx.telemetry.metrics.counter(name, help_text)
    print(ctx.telemetry.metrics.to_prometheus(), end="")
    # Percentile summary on stderr, so stdout stays a parseable scrape.
    summary = ctx.telemetry.metrics.percentile_summary()
    if summary:
        print("latency percentiles (from histogram buckets):", file=sys.stderr)
        for name, row in summary.items():
            print(
                f"  {name}: p50 {row['p50']:.4g}  p95 {row['p95']:.4g}  "
                f"p99 {row['p99']:.4g}  (n={row['count']:.0f})",
                file=sys.stderr,
            )


def _cmd_claims() -> None:
    ok = 0
    claims = all_claims()
    for c in claims:
        mark = "PASS" if c.holds else "FAIL"
        ok += c.holds
        print(f"[{mark}] {c.name}: paper {c.paper}; simulated {c.simulated}")
    print(f"\n{ok}/{len(claims)} claims hold")


def _cmd_systems() -> None:
    for system in all_systems():
        print(system.node.describe())
        print(f"    software: {system.software}")


def _cmd_health(ctx: ExecutionContext) -> None:
    from .core.result import CellStatus
    from .hw.selfcheck import node_health
    from .hw.systems import get_system

    for name in ("aurora", "dawn"):
        if ctx.active:
            engine = ctx.engine(name)
            injector = engine.faults
            injector.fast_forward()
            report = node_health(engine.system, injector)
            if not report.healthy:
                ctx.record(CellStatus.DEGRADED)
        else:
            report = node_health(get_system(name))
        print(report.render())
        print()
    from .profiler.selfcheck import profiler_selfcheck

    checks = profiler_selfcheck()
    for check in checks:
        mark = "ok " if check.passed else "FAIL"
        print(f"[{mark}] profiler     {check.name}"
              + (f"  ({check.detail})" if check.detail else ""))
    if not all(check.passed for check in checks):
        ctx.record(CellStatus.DEGRADED)
    print()
    from .campaign.scheduler import scheduler_selfcheck

    sched_checks = scheduler_selfcheck()
    for check in sched_checks:
        mark = "ok " if check.passed else "FAIL"
        print(f"[{mark}] scheduler    {check.name}"
              + (f"  ({check.detail})" if check.detail else ""))
    if not all(check.passed for check in sched_checks):
        ctx.record(CellStatus.DEGRADED)
    print()
    from .service.selfcheck import service_selfcheck

    svc_checks = service_selfcheck()
    for check in svc_checks:
        mark = "ok " if check.passed else "FAIL"
        print(f"[{mark}] service      {check.name}"
              + (f"  ({check.detail})" if check.detail else ""))
    if not all(check.passed for check in svc_checks):
        ctx.record(CellStatus.DEGRADED)
    print()
    print(ctx.telemetry_summary())


def _cmd_selfcheck() -> None:
    from .hw.extensions import frontier, jlse_a100
    from .hw.selfcheck import self_check
    from .hw.systems import all_systems

    ok = total = 0
    for system in all_systems() + [frontier(), jlse_a100()]:
        for check in self_check(system):
            total += 1
            ok += check.passed
            mark = "ok " if check.passed else "FAIL"
            print(f"[{mark}] {system.name:12s} {check.name}"
                  + (f"  ({check.detail})" if check.detail else ""))
    print(f"\n{ok}/{total} checks pass")


def _cmd_scaling() -> None:
    from .analysis.scaling_study import app_scaling, micro_scaling
    from .hw.systems import get_system
    from .sim.engine import PerfEngine
    from .sim.noise import QUIET

    for name in ("aurora", "dawn"):
        engine = PerfEngine(get_system(name), noise=QUIET)
        print(f"# {name}")
        for study in micro_scaling(engine) + app_scaling(engine):
            knee = study.knee(0.9)
            print(
                f"  {study.name:12s} full-node eff {study.full_node_efficiency:6.1%}"
                + (f"  (drops below 90% at {knee} stacks)" if knee else "")
            )


def _cmd_roofline() -> None:
    from .analysis.roofline_data import paper_kernels, roofline_series
    from .dtypes import Precision
    from .hw.systems import get_system
    from .sim.engine import PerfEngine
    from .sim.noise import QUIET

    for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250"):
        engine = PerfEngine(get_system(name), noise=QUIET)
        series = roofline_series(engine, Precision.FP64)
        print(
            f"{name:12s} roof {series.compute_roof / 1e12:6.1f} TFlop/s  "
            f"slope {series.memory_slope / 1e12:5.2f} TB/s  "
            f"ridge {series.ridge_intensity:5.1f} flop/B"
        )
        for point in paper_kernels(engine):
            print(
                f"    {point.name:22s} AI {point.intensity:8.2f}  "
                f"{point.achieved / 1e12:6.2f} TFlop/s  [{point.bound}]"
            )


def _cmd_top500() -> None:
    from .extras.hpcg import HpcgModel, HplModel
    from .hw.systems import get_system
    from .sim.engine import PerfEngine
    from .sim.noise import QUIET

    print(f"{'system':14s} {'HPL/node':>12s} {'HPCG/node':>12s} {'HPCG/HPL':>9s}")
    for name in ("aurora", "dawn", "jlse-h100", "jlse-mi250"):
        engine = PerfEngine(get_system(name), noise=QUIET)
        hpl = HplModel(engine).node_rate()
        hpcg = HpcgModel(engine).node_rate()
        print(
            f"{name:14s} {hpl / 1e12:9.1f} TF {hpcg / 1e12:9.2f} TF"
            f" {hpcg / hpl:8.1%}"
        )


# Commands that honour --inject take the execution context; the rest are
# zero-arg and run exactly as before.
_CTX_COMMANDS = {
    "table2": lambda ctx: print(table_ii(ctx=ctx).render()),
    "table3": lambda ctx: print(table_iii(ctx=ctx).render()),
    "table6": lambda ctx: print(table_vi(ctx=ctx).render()),
    "report": lambda ctx: print(full_report(ctx)),
    "health": _cmd_health,
}

# Commands that additionally need the parsed args (telemetry runs).
_TELEMETRY_COMMANDS = {
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
}

_COMMANDS = {
    "table1": lambda: print(table_i()),
    "table4": lambda: print(table_iv().render()),
    "table5": lambda: print(table_v()),
    # Figures render through the same text path the campaign result
    # store uses, so campaign artifacts are byte-identical to stdout.
    "fig1": lambda: print(render_figure("fig1")),
    "fig2": lambda: print(render_figure("fig2")),
    "fig3": lambda: print(render_figure("fig3")),
    "fig4": lambda: print(render_figure("fig4")),
    "claims": _cmd_claims,
    "systems": _cmd_systems,
    "roofline": _cmd_roofline,
    "top500": _cmd_top500,
    "selfcheck": _cmd_selfcheck,
    "scaling": _cmd_scaling,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pvc-bench",
        description="Regenerate the paper's tables and figures on the "
        "simulated substrate.",
    )
    parser.add_argument(
        "command",
        choices=sorted(_COMMANDS)
        + sorted(_CTX_COMMANDS)
        + sorted(_TELEMETRY_COMMANDS)
        + ["campaign", "loadgen", "obs", "profile", "serve-bench",
           "service", "sweep", "trend"],
    )
    parser.add_argument(
        "bench",
        nargs="?",
        default="gemm",
        help="benchmark for trace/metrics/profile "
        f"({', '.join(_TELEMETRY_BENCHES)}; default: gemm; profile also "
        "accepts 'smoke', 'full' — the campaign wall-clock/sim-cache "
        "benchmark matrix — 'service' — the daemon storm benchmark — "
        "and 'sweep' — the design-space throughput gate), the campaign "
        "action (run, resume, status, verify, watch), the obs action "
        "(export, serve), the service action (watch), the sweep spec "
        "name or JSON file for 'sweep', or the first baseline file for "
        "trend",
    )
    parser.add_argument(
        "extra",
        nargs="*",
        default=[],
        help="trailing positionals: the run directory for "
        "'campaign watch' / 'obs export' / 'obs serve', or further "
        "baseline files for 'trend'",
    )
    parser.add_argument(
        "--inject",
        metavar="SCENARIO",
        default=None,
        help="inject a deterministic fault scenario "
        f"({', '.join(SCENARIO_NAMES)}; campaign run also accepts "
        f"{', '.join(CAMPAIGN_SCENARIO_NAMES)} and the process-level "
        f"{', '.join(WORKER_SCENARIO_NAMES)})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the fault schedule (default: 0)",
    )
    parser.add_argument(
        "--system",
        default="aurora",
        help="system for trace/metrics runs (default: aurora)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the Perfetto trace JSON here instead of stdout",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="also write a run manifest (config + metrics + provenance)",
    )
    parser.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="campaign directory (journal, result store, artifacts)",
    )
    parser.add_argument(
        "--spec",
        default="paper",
        choices=sorted(SPEC_NAMES),
        help="campaign spec for 'campaign run' (default: paper)",
    )
    parser.add_argument(
        "--unit-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-unit simulated-clock watchdog: units that consume more "
        "simulated seconds are demoted to FAILED",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        default=None,
        help="campaign deadline on the simulated clock: scheduling stops "
        "once exceeded and the run exits resumable (code 3)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="campaign run/resume: execute independent units on N worker "
        "processes (artifacts stay byte-identical to a serial run); "
        "defaults to $CAMPAIGN_JOBS, else 1 (serial); sweep: shard "
        "evaluation chunks across N fork workers",
    )
    parser.add_argument(
        "--max-respawns",
        type=int,
        metavar="N",
        default=None,
        help="campaign run/resume with --jobs > 1: worker respawn budget "
        "before the scheduler degrades to in-process draining "
        "(default: 8)",
    )
    parser.add_argument(
        "--hang-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="campaign run/resume with --jobs > 1: SIGKILL a worker whose "
        "unit produces no heartbeat for this long and treat it as a "
        "crash (default: disabled, except under --inject worker-hang)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attach the API profiler to this run; manifests and campaign "
        "results gain a profile digest",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="profile: compare against this baseline snapshot; a "
        "regression beyond tolerance exits non-zero",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="profile: write the run's snapshot as a new baseline",
    )
    parser.add_argument(
        "--flamegraph",
        metavar="PATH",
        default=None,
        help="profile: export a deterministic collapsed-stack file "
        "(flamegraph.pl / speedscope input)",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        metavar="N",
        default=None,
        help="sweep: result rows to keep and rank (default: 16)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        metavar="POINTS",
        default=None,
        help="sweep: points per evaluation chunk — bounds memory and "
        "sets the sharding granularity (default: 262144)",
    )
    parser.add_argument(
        "--ndjson",
        action="store_true",
        help="sweep: also write every evaluated point to results.ndjson "
        "(one JSON object per line)",
    )
    parser.add_argument(
        "--verify",
        type=int,
        metavar="N",
        default=None,
        help="sweep: sampled points re-evaluated through the scalar "
        "golden reference, which must agree bit for bit (default: 64; "
        "0 disables)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="campaign watch: render one snapshot and exit instead of "
        "following the run",
    )
    parser.add_argument(
        "--interval",
        type=float,
        metavar="SECONDS",
        default=None,
        help="campaign watch: poll interval (default: 0.5)",
    )
    parser.add_argument(
        "--port",
        type=int,
        metavar="N",
        default=None,
        help="obs serve / serve-bench: TCP port to bind (default: "
        "ephemeral); loadgen: the daemon port to target (required)",
    )
    parser.add_argument(
        "--host",
        default=None,
        metavar="HOST",
        help="loadgen: daemon host to target (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help="serve-bench: executor threads pulling from the admission "
        "queue (default: 4)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        metavar="N",
        default=None,
        help="loadgen: total requests to fire (default: 200)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        metavar="N",
        default=None,
        help="loadgen: concurrent client connections (default: 16)",
    )
    parser.add_argument(
        "--distinct",
        type=int,
        metavar="N",
        default=None,
        help="loadgen: distinct request bodies in the population "
        "(default: 1 — maximal cache pressure)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        metavar="N",
        default=None,
        help="loadgen: tenants to spread the request population over "
        "(default: 4)",
    )
    parser.add_argument(
        "--slo-latency",
        type=float,
        metavar="SECONDS",
        default=None,
        help="serve-bench: SLO latency objective — a request slower than "
        "this counts against availability (default: 5.0)",
    )
    parser.add_argument(
        "--slo-availability",
        type=float,
        metavar="FRACTION",
        default=None,
        help="serve-bench: SLO availability objective in (0, 1] "
        "(default: 0.99)",
    )
    args = parser.parse_args(argv)
    needs_telemetry = (
        args.command in _TELEMETRY_COMMANDS
        or args.command == "health"
        or args.manifest is not None
        or args.profile
    )
    if needs_telemetry:
        from .telemetry import Telemetry

        telemetry = Telemetry(profile=args.profile)
    else:
        telemetry = None
    try:
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "campaign":
            from .campaign.orchestrator import campaign_main

            return campaign_main(args)
        if args.command == "serve-bench":
            from .service.daemon import serve_bench_main

            return serve_bench_main(args)
        if args.command == "loadgen":
            from .service.loadgen import loadgen_main

            return loadgen_main(args)
        if args.command == "obs":
            from .errors import CampaignError
            from .obs.export import export_main
            from .obs.serve import serve_main

            if args.bench == "export":
                return export_main(args)
            if args.bench == "serve":
                return serve_main(args)
            raise CampaignError(
                f"unknown obs action {args.bench!r}; "
                "choose from: export, serve"
            )
        if args.command == "service":
            from .errors import CampaignError
            from .obs.watch import service_watch_main

            if args.bench == "watch":
                return service_watch_main(args)
            raise CampaignError(
                f"unknown service action {args.bench!r}; choose from: watch"
            )
        if args.command == "sweep":
            from .sweep.runner import sweep_main

            return sweep_main(args)
        if args.command == "trend":
            from .obs.trend import trend_main

            return trend_main(args)
        ctx = ExecutionContext(args.inject, args.seed, telemetry=telemetry)
        if args.command in _TELEMETRY_COMMANDS:
            _TELEMETRY_COMMANDS[args.command](ctx, args)
        elif args.command in _CTX_COMMANDS:
            _CTX_COMMANDS[args.command](ctx)
        else:
            if ctx.active:
                print(
                    f"pvc-bench: note: {args.command} ignores --inject",
                    file=sys.stderr,
                )
            _COMMANDS[args.command]()
        if args.manifest is not None:
            from .telemetry.manifest import write_manifest

            write_manifest(args.manifest, ctx.manifest(args.command))
            print(f"manifest written to {args.manifest}", file=sys.stderr)
    except KeyboardInterrupt:
        print("pvc-bench: interrupted (resumable state flushed)", file=sys.stderr)
        return int(ExitCode.INTERRUPTED)
    except ReproError as exc:
        print(f"pvc-bench: {type(exc).__name__}: {exc}", file=sys.stderr)
        return int(classify_error(exc))
    return ctx.exit_code()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
