"""Per-run telemetry context: one tracer + one metrics registry.

A :class:`Telemetry` instance is the handle every layer carries: the
performance engine, SYCL queues, the MPI layer, the fault injector and
the runners all record into the same session, so a single run produces
one coherent timeline, one metrics scrape and one manifest.

Lane naming conventions (see ``docs/telemetry.md``):

* ``run``            — the benchmark driver timeline (repetitions,
  retries, backoff gaps, run-level spans);
* ``rank N``         — one per MPI rank;
* ``gpu C.S``        — one per SYCL queue / device stack;
* ``faults``         — injector events that have no device target.

Sort keys keep that order stable in Perfetto regardless of which lane
recorded first: run < ranks (by rank) < queues (by card, stack) < the
rest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import MetricsRegistry
from .trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hw.ids import StackRef
    from ..sim.engine import PerfEngine
    from ..runtime.sycl import SyclQueue

__all__ = ["Telemetry", "RUN_LANE", "FAULT_LANE", "gpu_lane", "rank_lane"]

RUN_LANE = "run"
FAULT_LANE = "faults"


def gpu_lane(ref: "StackRef") -> str:
    """Lane name for a device stack's queue timeline."""
    return f"gpu {ref}"


def rank_lane(rank: int) -> str:
    """Lane name for one MPI rank's timeline."""
    return f"rank {rank}"


class Telemetry:
    """One run's telemetry session (tracer + metrics + queue cache).

    ``unit`` names the campaign unit this session is attributed to (if
    any): runners add a ``unit=<id>`` label to their resilience counters,
    which is what lets campaign resume drop and re-record one unit's
    metrics idempotently (see :meth:`MetricsRegistry.drop_label`).
    """

    def __init__(
        self, unit: str | None = None, *, profile: bool = False
    ) -> None:
        self.unit = unit
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.profiler = None
        if profile:
            # Lazy import: repro.profiler renders reports over telemetry
            # aggregates, so the package root must not import it eagerly.
            from ..profiler.core import ApiProfiler

            self.profiler = ApiProfiler()
        self.tracer.lane(RUN_LANE, sort_key=(0, 0, 0))
        self._queues: dict[tuple[str, object], "SyclQueue"] = {}
        # Pre-declare the resilience counters so a clean scrape still
        # exposes them (at 0) and attaches HELP text.
        self.metrics.counter(
            "retry.count", help="repetitions retried after a recoverable fault"
        )
        self.metrics.counter(
            "quarantine.count", help="benchmarks quarantined after retry budget"
        )
        self.metrics.counter(
            "fault.count", help="injected faults observed on the timeline"
        )

    # ------------------------------------------------------------------
    # lane registration helpers (sort keys give deterministic ordering)
    # ------------------------------------------------------------------

    def run_lane(self) -> str:
        return self.tracer.lane(RUN_LANE, sort_key=(0, 0, 0))

    def rank_lane(self, rank: int) -> str:
        return self.tracer.lane(rank_lane(rank), sort_key=(1, rank, 0))

    def gpu_lane(self, ref: "StackRef") -> str:
        return self.tracer.lane(
            gpu_lane(ref), sort_key=(2, ref.card, ref.stack)
        )

    def fault_lane(self) -> str:
        return self.tracer.lane(FAULT_LANE, sort_key=(8, 0, 0))

    def unit_labels(self) -> dict[str, str]:
        """Extra metric labels attributing samples to a campaign unit."""
        return {"unit": self.unit} if self.unit is not None else {}

    # ------------------------------------------------------------------
    # recording shortcuts
    # ------------------------------------------------------------------

    def span(self, name: str, lane: str = RUN_LANE, **attrs):
        """``with telemetry.span("gemm.run", attrs=...):`` — see Tracer."""
        return self.tracer.span(name, lane, **attrs)

    def instant_fault(self, name: str, lane: str | None = None, **args):
        """Mark an injected/observed fault on the timeline + metrics."""
        kind = str(args.get("kind", "fault"))
        self.metrics.inc("fault.count", kind=kind)
        return self.tracer.instant(
            name, lane if lane is not None else self.fault_lane(), **args
        )

    # ------------------------------------------------------------------
    # SYCL queue cache (per-device timelines that persist across reps)
    # ------------------------------------------------------------------

    def sycl_queue(self, engine: "PerfEngine", ref: "StackRef") -> "SyclQueue":
        """A cached telemetry-wired queue on *ref*.

        Caching keeps each device lane's simulated clock advancing across
        repetitions, so the exported timeline is one continuous run.
        """
        key = (engine.system.name, ref)
        queue = self._queues.get(key)
        if queue is None:
            from ..errors import DeviceLostError
            from ..runtime.sycl import SyclRuntime

            runtime = SyclRuntime(engine)
            device = next(
                (d for d in runtime.devices() if d.ref == ref), None
            )
            if device is None:
                # The stack vanished between selection and queue creation
                # (injected loss): surface a retryable error.
                raise DeviceLostError(f"device {ref} is lost", stack=ref)
            queue = runtime.queue(device)
            self._queues[key] = queue
        return queue

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------

    def faults_observed(self) -> int:
        if "fault.count" not in self.metrics:
            return 0
        return int(round(self.metrics.counter("fault.count").total()))

    def summary(self) -> str:
        """One line of machine-grepable evidence for health/exit reports."""
        return (
            f"telemetry: {self.tracer.n_spans()} span(s) on "
            f"{len(self.tracer.lanes())} lane(s), "
            f"{self.tracer.n_instants()} instant event(s), "
            f"{self.faults_observed()} fault(s) observed, "
            f"{len(self.metrics.names())} metric(s)"
        )
