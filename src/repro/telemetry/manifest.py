"""Run manifests: one JSON document binding config to evidence.

The paper's methodology is auditable because every table cell traces
back to a profiler timeline and a run script; the simulated runs get
the same property here.  A manifest binds:

* **config** — command, systems, fault scenario + seed, calibration
  provenance (calibration key and noise amplitude per system);
* **status** — the exit-code contract (0 clean / 1 degraded / 2 failed)
  and the worst cell status observed;
* **telemetry** — span/instant/lane counts and the full metrics
  snapshot;
* **provenance** — the ordered incident log (every fault applied);
* **trace_files** — paths of exported Perfetto timelines.

Manifests are deterministic: no wall-clock timestamps or hostnames, and
the serialisation sorts keys, so the same seed + scenario yields a
byte-identical document.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Sequence

SCHEMA = "repro.telemetry.manifest/v1"

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.context import ExecutionContext

__all__ = ["SCHEMA", "build_manifest", "render_manifest", "write_manifest"]


def build_manifest(
    command: str,
    ctx: "ExecutionContext",
    trace_files: Sequence[str] = (),
    campaign: dict | None = None,
    systems: Sequence[str] | None = None,
) -> dict:
    """Assemble the manifest document for one CLI invocation.

    *campaign* attaches the campaign section (unit digests, aggregated
    metrics) a finished ``campaign run``/``resume`` produces; *systems*
    overrides the system list when the caller measured through its own
    per-unit contexts rather than *ctx* (the orchestrator does both).
    """
    from ..sim.calibration import get_calibration
    from ..hw.systems import get_system

    systems = sorted(systems) if systems is not None else sorted(ctx.engines_built())
    calibration = {}
    for sys_name in systems:
        system = get_system(sys_name)
        cal = get_calibration(system.calibration_key)
        calibration[sys_name] = {
            "key": system.calibration_key,
            "noise_amplitude": cal.noise_amplitude,
            "citation": (
                "achieved-fraction constants in repro/sim/calibration.py, "
                "each cited to the paper's Section IV"
            ),
        }
    telemetry = ctx.telemetry
    doc = {
        "schema": SCHEMA,
        "command": command,
        "config": {
            "systems": systems,
            "scenario": ctx.scenario,
            "seed": ctx.seed,
            "calibration": calibration,
        },
        "status": {
            "exit_code": ctx.exit_code(),
            "worst_cell": ctx.worst_status.name,
        },
        "telemetry": {
            "enabled": telemetry is not None,
            "spans": telemetry.tracer.n_spans() if telemetry else 0,
            "instants": telemetry.tracer.n_instants() if telemetry else 0,
            "faults_observed": (
                telemetry.faults_observed() if telemetry else 0
            ),
            "lanes": telemetry.tracer.lanes() if telemetry else [],
        },
        "metrics": telemetry.metrics.snapshot() if telemetry else {},
        "provenance": {
            "incidents": list(ctx.incident_log()),
            "fault_plans": {
                sys_name: injector.plan.describe()
                for sys_name, injector in sorted(ctx.injectors_built())
            },
        },
        "trace_files": list(trace_files),
    }
    profiler = getattr(telemetry, "profiler", None) if telemetry else None
    if profiler is not None:
        doc["profile"] = profiler.summary()
    if campaign is not None:
        doc["campaign"] = campaign
    return doc


def render_manifest(doc: dict) -> str:
    """Byte-stable JSON serialisation of a manifest document."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_manifest(path: str, doc: dict) -> None:
    """Serialise a manifest document to *path* atomically."""
    from ..ioutils import atomic_write_text

    atomic_write_text(path, render_manifest(doc))
