"""Metrics registry: counters, gauges, histograms, two exporters.

The training/inference stacks the ROADMAP points at live on a metrics
plane (Prometheus scrape endpoints); the simulated substrate gets the
same shape here.  Names use dotted form internally (``transfer.bytes``)
and are normalised to the Prometheus grammar (``transfer_bytes``) at
export time.  Labels are plain keyword arguments::

    registry.inc("transfer.bytes", 5e8, path="xelink")
    registry.set_gauge("roofline.regime", 1.0, kernel="dgemm")
    registry.observe("kernel.time_us", 130.0)

Everything is deterministic: values derive from the simulated clock and
seeded fault plans, never the wall clock, and both exporters emit in
sorted order.
"""

from __future__ import annotations

import bisect
import json
import re
import threading
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Histogram bucket upper bounds (simulated microseconds / ratios both
#: fit; the +Inf bucket is implicit).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7,
)

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, object]) -> LabelSet:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"bad label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _prom_name(name: str) -> str:
    return name.replace(".", "_")


def _prom_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _prom_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    # Sort here, not just at construction: exported bytes must not
    # depend on how a label set was assembled (or on PYTHONHASHSEED).
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels))
    return "{" + inner + "}"


@dataclass
class Counter:
    """A monotonically increasing value (per label set)."""

    name: str
    help: str = ""
    _values: dict[LabelSet, float] = field(default_factory=dict)

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError(f"{self.name}: counters cannot decrease")
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        return self._values.get(_labelset(labels), 0.0)

    def total(self, **labels) -> float:
        """Sum over every label set containing the given label pairs.

        With no arguments this is the grand total; with
        ``total(tenant="a")`` it folds every series whose label set
        includes ``tenant="a"`` regardless of other labels — the
        service board's per-tenant request counts come from here.
        """
        if not labels:
            return sum(self._values.values())
        want = set(_labelset(labels))
        # list(): the service board folds while executor threads
        # increment; a snapshot avoids resize-during-iteration.
        return sum(
            value
            for ls, value in list(self._values.items())
            if want <= set(ls)
        )

    def samples(self) -> list[tuple[LabelSet, float]]:
        return sorted(self._values.items())


@dataclass
class Gauge:
    """A value that can go up and down (per label set)."""

    name: str
    help: str = ""
    _values: dict[LabelSet, float] = field(default_factory=dict)

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._values[_labelset(labels)] = float(value)

    def add(self, value: float, **labels) -> None:
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        return self._values.get(_labelset(labels), 0.0)

    def samples(self) -> list[tuple[LabelSet, float]]:
        return sorted(self._values.items())


@dataclass
class _HistogramState:
    counts: list[int]
    total: int = 0
    sum: float = 0.0


@dataclass
class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    name: str
    help: str = ""
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    _states: dict[LabelSet, _HistogramState] = field(default_factory=dict)

    kind = "histogram"

    def __post_init__(self) -> None:
        if tuple(sorted(self.buckets)) != tuple(self.buckets):
            raise ValueError(f"{self.name}: buckets must be sorted")
        if not self.buckets:
            raise ValueError(f"{self.name}: need at least one bucket")

    def observe(self, value: float, **labels) -> None:
        key = _labelset(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(
                counts=[0] * len(self.buckets)
            )
        idx = bisect.bisect_left(self.buckets, value)
        if idx < len(self.buckets):
            state.counts[idx] += 1
        state.total += 1
        state.sum += value

    def count(self, **labels) -> int:
        state = self._states.get(_labelset(labels))
        return 0 if state is None else state.total

    def sum_observed(self, **labels) -> float:
        state = self._states.get(_labelset(labels))
        return 0.0 if state is None else state.sum

    def cumulative_counts(self, **labels) -> list[int]:
        """Per-bucket cumulative counts (Prometheus ``le`` semantics)."""
        state = self._states.get(_labelset(labels))
        if state is None:
            return [0] * len(self.buckets)
        out, running = [], 0
        for c in state.counts:
            running += c
            out.append(running)
        return out

    def percentile(self, q: float, **labels) -> float:
        """The *q*-quantile estimated from the cumulative buckets.

        Same estimator as PromQL's ``histogram_quantile``: find the
        bucket the rank falls in and interpolate linearly inside it.  A
        rank landing in the +Inf bucket returns the largest finite
        bound (the histogram cannot resolve beyond it); an empty
        histogram returns 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"{self.name}: quantile must be in [0, 1], got {q}")
        state = self._states.get(_labelset(labels))
        if state is None or state.total == 0:
            return 0.0
        rank = q * state.total
        cumulative = self.cumulative_counts(**labels)
        for i, (bound, cum) in enumerate(zip(self.buckets, cumulative)):
            if cum >= rank:
                lower = self.buckets[i - 1] if i else 0.0
                below = cumulative[i - 1] if i else 0
                in_bucket = cum - below
                if in_bucket == 0:  # pragma: no cover - cum >= rank guards
                    return bound
                return lower + (bound - lower) * (rank - below) / in_bucket
        return self.buckets[-1]

    def percentiles(
        self, qs: tuple[float, ...] = (0.5, 0.95, 0.99), **labels
    ) -> dict[str, float]:
        """The standard latency summary (p50/p95/p99 by default)."""
        return {f"p{q * 100:g}": self.percentile(q, **labels) for q in qs}

    def folded_state(self, **labels) -> _HistogramState:
        """Merge every label set containing the given pairs into one state.

        ``folded_state()`` folds everything;
        ``folded_state(tenant="a")`` folds ``tenant="a"`` series across
        all other label dimensions (endpoints, statuses, ...).
        """
        want = set(_labelset(labels))
        merged = _HistogramState(counts=[0] * len(self.buckets))
        # list(): folds run concurrently with observers (see Counter.total).
        for ls, state in list(self._states.items()):
            if want <= set(ls):
                for i, c in enumerate(state.counts):
                    merged.counts[i] += c
                merged.total += state.total
                merged.sum += state.sum
        return merged

    def folded_percentile(self, q: float, **labels) -> float:
        """:meth:`percentile` over the subset-fold of matching label sets."""
        folded = Histogram(name=self.name, buckets=self.buckets)
        folded._states[()] = self.folded_state(**labels)
        return folded.percentile(q)

    def samples(self) -> list[tuple[LabelSet, _HistogramState]]:
        return sorted(self._states.items(), key=lambda kv: kv[0])


class MetricsRegistry:
    """A named collection of metrics with exporters.

    The convenience methods (:meth:`inc`, :meth:`set_gauge`,
    :meth:`observe`) create metrics on first use, so instrumented layers
    never have to pre-declare anything.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    # -- declaration ------------------------------------------------------

    def _get_or_create(self, name: str, factory, kind: str):
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help), "counter"
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets), "histogram"
        )

    # -- convenience -------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        counter = self.counter(name)
        with self._lock:  # MPI rank threads increment concurrently
            counter.inc(value, **labels)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        gauge = self.gauge(name)
        with self._lock:
            gauge.set(value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        histogram = self.histogram(name)
        with self._lock:
            histogram.observe(value, **labels)

    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge (0.0 when never touched)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            raise ValueError(f"{name} is a histogram; use .histogram()")
        return metric.value(**labels)

    def drop_label(self, key: str, value: str) -> int:
        """Remove every sample whose label set contains ``key=value``.

        This is the idempotent-attribution primitive behind campaign
        resume: before a unit is re-executed, its previous contributions
        (labelled ``unit=<id>``) are dropped so retry/quarantine counters
        are never double-counted.  Returns the number of samples removed.
        """
        pair = (key, str(value))
        removed = 0
        with self._lock:
            for metric in self._metrics.values():
                store = (
                    metric._states
                    if isinstance(metric, Histogram)
                    else metric._values
                )
                doomed = [ls for ls in store if pair in ls]
                for ls in doomed:
                    del store[ls]
                removed += len(doomed)
        return removed

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- exporters ---------------------------------------------------------

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (sorted, deterministic)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            prom = _prom_name(name)
            if metric.help:
                lines.append(f"# HELP {prom} {metric.help}")
            lines.append(f"# TYPE {prom} {metric.kind}")
            if isinstance(metric, Histogram):
                for labels, state in metric.samples():
                    cumulative = 0
                    for bound, count in zip(metric.buckets, state.counts):
                        cumulative += count
                        le = dict(labels)
                        le["le"] = _prom_number(bound)
                        lines.append(
                            f"{prom}_bucket{_prom_labels(_labelset(le))} "
                            f"{cumulative}"
                        )
                    le = dict(labels)
                    le["le"] = "+Inf"
                    lines.append(
                        f"{prom}_bucket{_prom_labels(_labelset(le))} "
                        f"{state.total}"
                    )
                    lines.append(
                        f"{prom}_sum{_prom_labels(labels)} "
                        f"{_prom_number(state.sum)}"
                    )
                    lines.append(
                        f"{prom}_count{_prom_labels(labels)} {state.total}"
                    )
            else:
                samples = metric.samples()
                if not samples:
                    lines.append(f"{prom} 0")
                for labels, value in samples:
                    lines.append(
                        f"{prom}{_prom_labels(labels)} {_prom_number(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_openmetrics(self) -> str:
        """The OpenMetrics text exposition format (sorted, deterministic).

        Differs from :meth:`to_prometheus` where the OpenMetrics spec
        demands it: counter sample names carry the ``_total`` suffix
        (the ``# TYPE`` line names the bare metric family), every
        histogram family gets explicit ``# TYPE``/``# HELP`` lines ahead
        of its ``_bucket``/``_sum``/``_count`` samples, and the
        exposition is terminated by ``# EOF``.  This is what the
        ``obs serve`` scrape endpoint emits.
        """
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            prom = _prom_name(name)
            if metric.help:
                lines.append(f"# HELP {prom} {metric.help}")
            lines.append(f"# TYPE {prom} {metric.kind}")
            if isinstance(metric, Histogram):
                for labels, state in metric.samples():
                    cumulative = 0
                    for bound, count in zip(metric.buckets, state.counts):
                        cumulative += count
                        le = dict(labels)
                        le["le"] = _prom_number(bound)
                        lines.append(
                            f"{prom}_bucket{_prom_labels(_labelset(le))} "
                            f"{cumulative}"
                        )
                    le = dict(labels)
                    le["le"] = "+Inf"
                    lines.append(
                        f"{prom}_bucket{_prom_labels(_labelset(le))} "
                        f"{state.total}"
                    )
                    lines.append(
                        f"{prom}_sum{_prom_labels(labels)} "
                        f"{_prom_number(state.sum)}"
                    )
                    lines.append(
                        f"{prom}_count{_prom_labels(labels)} {state.total}"
                    )
            elif isinstance(metric, Counter):
                samples = metric.samples()
                if not samples:
                    lines.append(f"{prom}_total 0")
                for labels, value in samples:
                    lines.append(
                        f"{prom}_total{_prom_labels(labels)} "
                        f"{_prom_number(value)}"
                    )
            else:
                samples = metric.samples()
                if not samples:
                    lines.append(f"{prom} 0")
                for labels, value in samples:
                    lines.append(
                        f"{prom}{_prom_labels(labels)} {_prom_number(value)}"
                    )
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def percentile_summary(
        self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> dict[str, dict[str, float]]:
        """Per-histogram percentiles, folded across every label set.

        The ``metrics`` CLI summary renders this: one p50/p95/p99 row
        per histogram, regardless of how its samples were labelled.
        """
        out: dict[str, dict[str, float]] = {}
        for name in self.names():
            metric = self._metrics[name]
            if not isinstance(metric, Histogram):
                continue
            folded = Histogram(name=metric.name, buckets=metric.buckets)
            merged = _HistogramState(counts=[0] * len(metric.buckets))
            for _, state in metric.samples():
                for i, c in enumerate(state.counts):
                    merged.counts[i] += c
                merged.total += state.total
                merged.sum += state.sum
            folded._states[()] = merged
            out[name] = {
                "count": float(merged.total),
                "sum": merged.sum,
                **folded.percentiles(qs),
            }
        return out

    def snapshot(self) -> dict:
        """A JSON-able snapshot (used by run manifests)."""
        out: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: dict[str, object] = {"kind": metric.kind}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["samples"] = [
                    {
                        "labels": dict(sorted(labels)),
                        "counts": list(state.counts),
                        "count": state.total,
                        "sum": state.sum,
                    }
                    for labels, state in metric.samples()
                ]
            else:
                entry["samples"] = [
                    {"labels": dict(sorted(labels)), "value": value}
                    for labels, value in metric.samples()
                ]
            out[name] = entry
        return out

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)
