"""Span tracing over the simulated clock.

Profiling on the real systems (unitrace / iprof / nsys) produces
per-queue timelines; this module gives simulated runs the same
observability.  A :class:`Tracer` collects events on named **lanes**
(one lane per SYCL queue, MPI rank, or run-level timeline) and exports
the standard ``chrome://tracing`` JSON (``trace_event`` format),
loadable in Perfetto.

Three event shapes:

* **complete** ("X") — a named interval with a start and duration;
* **instant** ("i") — a zero-duration marker (injected faults, poison
  events, scope clips);
* **span** — a complete event produced by the :meth:`Tracer.span`
  context manager, whose duration is however much simulated time the
  lane's clock advanced while the span was open (so spans nest).

Every lane owns a monotonically advancing cursor in simulated
microseconds; recording an event moves the cursor to the event's end.
Export is fully deterministic: lanes are ordered by their registered
sort key (rank, then queue index — not first-event order), events
within a lane are sorted by timestamp, and ``thread_name`` metadata
events label the lanes in Perfetto.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["TraceEvent", "Lane", "Tracer", "INSTANT", "COMPLETE"]

#: Chrome trace-event phases used here.
COMPLETE = "X"
INSTANT = "i"

#: Default sort key group for lanes registered implicitly (sorts after
#: the run/rank/queue groups that register explicit keys).
_DEFAULT_GROUP = 9


@dataclass(frozen=True, slots=True)
class Lane:
    """A timeline row: one queue, rank, or logical actor.

    ``sort_key`` decides the Perfetto ``tid`` ordering: lanes sort by
    ``(sort_key, name)`` regardless of which lane recorded first, so the
    export is independent of event insertion order across ranks.
    """

    name: str
    sort_key: tuple[int, int, int] = (_DEFAULT_GROUP, 0, 0)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One event on the simulated timeline."""

    name: str
    lane: str
    start_us: float
    duration_us: float = 0.0
    phase: str = COMPLETE
    category: str = "kernel"
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError("negative event duration")
        if self.phase not in (COMPLETE, INSTANT):
            raise ValueError(f"unsupported trace phase {self.phase!r}")

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us

    def to_chrome(self, tid: int) -> dict:
        doc = {
            "name": self.name,
            "cat": self.category,
            "ph": self.phase,
            "ts": self.start_us,
            "pid": 0,
            "tid": tid,
            "args": dict(self.args),
        }
        if self.phase == COMPLETE:
            doc["dur"] = self.duration_us
        else:
            doc["s"] = "t"  # thread-scoped instant marker
        return doc


def _event_order(event: TraceEvent) -> tuple:
    """Total order for events within a lane.

    Events are recorded from one thread per lane in the common case, but
    fault instants can land from any thread; sorting by the full content
    keeps the export byte-identical regardless of interleaving.
    """
    return (
        event.start_us,
        event.duration_us,
        event.phase,
        event.name,
        event.category,
        json.dumps(event.args, sort_keys=True, default=str),
    )


class Tracer:
    """Collects trace events and exports deterministic Perfetto JSON."""

    def __init__(self) -> None:
        self._lanes: dict[str, Lane] = {}
        self._events: list[TraceEvent] = []
        self._cursor: dict[str, float] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lanes and clocks
    # ------------------------------------------------------------------

    def lane(
        self, name: str, sort_key: tuple[int, int, int] | None = None
    ) -> str:
        """Register (or re-register with a better sort key) a lane."""
        with self._lock:
            known = self._lanes.get(name)
            if known is None or sort_key is not None:
                self._lanes[name] = Lane(
                    name, sort_key if sort_key is not None else
                    (known.sort_key if known else (_DEFAULT_GROUP, 0, 0))
                )
            self._cursor.setdefault(name, 0.0)
        return name

    def lanes(self) -> list[str]:
        """Lane names in deterministic export order."""
        return [lane.name for lane in self._ordered_lanes()]

    def _ordered_lanes(self) -> list[Lane]:
        return sorted(
            self._lanes.values(), key=lambda l: (l.sort_key, l.name)
        )

    def now_us(self, lane: str) -> float:
        """The lane's cursor: end of the latest work recorded on it."""
        return self._cursor.get(lane, 0.0)

    def advance(self, lane: str, duration_us: float) -> None:
        """Move a lane's cursor without recording an event (idle gaps)."""
        if duration_us < 0:
            raise ValueError("cannot advance a lane backwards")
        self.lane(lane)
        with self._lock:
            self._cursor[lane] += duration_us

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(self, event: TraceEvent) -> None:
        self.lane(event.lane)
        with self._lock:
            self._events.append(event)
            if event.end_us > self._cursor[event.lane]:
                self._cursor[event.lane] = event.end_us

    def complete(
        self,
        name: str,
        lane: str,
        duration_us: float,
        *,
        start_us: float | None = None,
        category: str = "kernel",
        **args,
    ) -> TraceEvent:
        """Record a complete event; defaults to starting at the cursor."""
        if start_us is None:
            start_us = self.now_us(lane)
        event = TraceEvent(
            name=name,
            lane=lane,
            start_us=start_us,
            duration_us=duration_us,
            category=category,
            args=args,
        )
        self.record(event)
        return event

    def instant(
        self,
        name: str,
        lane: str,
        *,
        ts_us: float | None = None,
        category: str = "fault",
        **args,
    ) -> TraceEvent:
        """Record a zero-duration marker (defaults to the lane cursor)."""
        event = TraceEvent(
            name=name,
            lane=lane,
            start_us=ts_us if ts_us is not None else self.now_us(lane),
            phase=INSTANT,
            category=category,
            args=args,
        )
        self.record(event)
        return event

    @contextmanager
    def span(
        self, name: str, lane: str = "run", *, category: str = "span", **attrs
    ) -> Iterator[None]:
        """A nested span: duration = simulated time the lane advanced.

        ::

            with tracer.span("gemm.run", lane="run", precision="fp64"):
                ...  # record child events / advance the lane
        """
        self.lane(lane)
        start = self.now_us(lane)
        try:
            yield
        finally:
            end = max(self.now_us(lane), start)
            self.record(
                TraceEvent(
                    name=name,
                    lane=lane,
                    start_us=start,
                    duration_us=end - start,
                    category=category,
                    args=attrs,
                )
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._events)

    def events_on(self, lane: str) -> list[TraceEvent]:
        return sorted(
            (e for e in self.events if e.lane == lane), key=_event_order
        )

    def n_spans(self) -> int:
        """Complete (interval) events recorded so far."""
        return sum(1 for e in self.events if e.phase == COMPLETE)

    def n_instants(self, category: str | None = None) -> int:
        return sum(
            1
            for e in self.events
            if e.phase == INSTANT
            and (category is None or e.category == category)
        )

    def total_busy_us(self, lane: str) -> float:
        """Busy time on a lane, excluding span envelopes (which would
        double-count the child events they contain)."""
        return sum(
            e.duration_us
            for e in self.events
            if e.lane == lane and e.phase == COMPLETE and e.category != "span"
        )

    def span_us(self) -> float:
        """End-to-end simulated span across all lanes."""
        events = self.events
        if not events:
            return 0.0
        start = min(e.start_us for e in events)
        end = max(e.end_us for e in events)
        return end - start

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The chrome://tracing document as a plain dict.

        Lane ``tid`` assignment follows the registered sort keys — not
        first-event order — so exports are identical however rank threads
        interleaved.  ``thread_name`` metadata events label the lanes.
        """
        lanes = self._ordered_lanes()
        tid_of = {lane.name: i for i, lane in enumerate(lanes)}
        trace_events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "args": {"name": "repro simulated node"},
            }
        ]
        for lane in lanes:
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid_of[lane.name],
                    "args": {"name": lane.name},
                }
            )
            trace_events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid_of[lane.name],
                    "args": {"sort_index": tid_of[lane.name]},
                }
            )
        events = self.events
        for lane in lanes:
            mine = sorted(
                (e for e in events if e.lane == lane.name), key=_event_order
            )
            trace_events.extend(e.to_chrome(tid_of[lane.name]) for e in mine)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def export_json(self) -> str:
        """Deterministic (byte-stable) Perfetto-loadable JSON."""
        return json.dumps(self.to_chrome(), indent=2, sort_keys=True)
