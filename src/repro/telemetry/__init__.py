"""End-to-end telemetry for the simulated stack.

Three pieces, all deterministic under a fixed seed + scenario:

* :mod:`repro.telemetry.trace` — span tracing on the simulated clock,
  exported as Perfetto-loadable chrome://tracing JSON;
* :mod:`repro.telemetry.metrics` — counters/gauges/histograms with
  Prometheus-text and JSON exporters;
* :mod:`repro.telemetry.manifest` — per-run manifests binding config,
  metrics and trace files into one auditable document.

:class:`Telemetry` (in :mod:`repro.telemetry.session`) bundles a tracer
and a metrics registry into the per-run handle every layer carries.
"""

from .manifest import SCHEMA, build_manifest, render_manifest, write_manifest
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .session import FAULT_LANE, RUN_LANE, Telemetry, gpu_lane, rank_lane
from .trace import COMPLETE, INSTANT, Lane, TraceEvent, Tracer

__all__ = [
    "COMPLETE",
    "Counter",
    "FAULT_LANE",
    "Gauge",
    "Histogram",
    "INSTANT",
    "Lane",
    "MetricsRegistry",
    "RUN_LANE",
    "SCHEMA",
    "Telemetry",
    "TraceEvent",
    "Tracer",
    "build_manifest",
    "gpu_lane",
    "rank_lane",
    "render_manifest",
    "write_manifest",
]
