"""Process-level fault plans: killing, hanging, and starving workers.

PR 1's injectors perturb the *simulated hardware* inside a run; the
plans here attack the campaign machinery itself at the operating-system
level, the failure mode "Scaling MPI Applications on Aurora" reports as
the common case at scale: worker processes SIGKILLed mid-unit (OOM
killer, node health daemon), workers that stop making progress without
dying, and the shared filesystem transiently refusing writes.

A :class:`WorkerFaultPlan` is — like every other plan in this package —
a pure function of ``(scenario, seed)``: the same pair always kills the
same worker at the same unit attempt, which is what lets the chaos
property suite assert that a supervised campaign's artifacts are
byte-identical to a clean serial run at *every* kill point.

The plan is consulted in two places:

* the campaign worker loop (:mod:`repro.campaign.scheduler`) asks
  :meth:`WorkerFaultPlan.kill_point` / :meth:`WorkerFaultPlan.should_hang`
  per ``(unit, attempt)`` — attempts are numbered by the parent's
  supervisor, so a fault scheduled for attempts ``1..K`` clears once the
  unit has been retried K times (or quarantines it when K reaches the
  poison threshold);
* the orchestrator installs :meth:`WorkerFaultPlan.io_gate` into
  :func:`repro.ioutils.set_io_fault_gate`, failing scheduled journal and
  store write ops with ``ENOSPC`` until the bounded retry absorbs them.

Worker faults fire only inside worker processes: the supervisor's
degraded-mode serial drain executes units in the orchestrator process,
which deliberately bypasses them (a poison unit must not take the
orchestrator down with it).
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ScenarioError
from .plan import SeededDraw

__all__ = [
    "DEFAULT_POISON_CRASHES",
    "KILL_POINTS",
    "WORKER_SCENARIO_NAMES",
    "WorkerFaultPlan",
    "build_worker_plan",
]

#: Consecutive worker crashes on one unit before it is quarantined.
DEFAULT_POISON_CRASHES = 3

#: Where a scheduled kill lands relative to the unit's execution:
#: ``"start"`` — the worker dies before executing (the unit is lost and
#: must be re-enqueued); ``"done"`` — the worker dies *after* its result
#: is flushed to the result queue (the classic swallowed-result race:
#: the supervisor must drain and commit the queued outcome instead of
#: re-running the unit).
KILL_POINTS = ("start", "done")

#: Orchestrator ``--inject`` scenarios built by :func:`build_worker_plan`.
WORKER_SCENARIO_NAMES = (
    "worker-kill",
    "worker-hang",
    "worker-poison",
    "io-enospc",
)

#: Transient-failure depth for ``io-enospc``: each scheduled op fails
#: this many consecutive attempts, comfortably inside the
#: :data:`repro.ioutils.IO_RETRY_ATTEMPTS` budget so the retry absorbs it.
_ENOSPC_FAILURES = 2

#: Write ops eligible for the ``io-enospc`` schedule (the journal and
#: store land well within this window for every spec).
_ENOSPC_OP_RANGE = (1, 12)


@dataclass(frozen=True)
class WorkerFaultPlan:
    """A deterministic schedule of process-level campaign faults.

    ``kills`` maps a unit id to ``(attempts, point)``: any worker
    executing that unit dies (SIGKILL to itself) on attempts
    ``1..attempts``, at the given :data:`KILL_POINTS` position.
    ``hangs`` maps a unit id to the number of attempts that stall
    forever instead of dying.  ``enospc`` maps 1-based write-op indices
    (journal appends + store/artifact writes, in commit order) to the
    number of consecutive attempts that fail with ``ENOSPC``.
    """

    scenario: str
    seed: int
    kills: Mapping[str, tuple[int, str]] = field(default_factory=dict)
    hangs: Mapping[str, int] = field(default_factory=dict)
    enospc: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for unit_id, (attempts, point) in self.kills.items():
            if point not in KILL_POINTS:
                raise ScenarioError(
                    f"kill point for unit {unit_id!r} must be one of "
                    f"{', '.join(KILL_POINTS)}, got {point!r}"
                )
            if attempts < 1:
                raise ScenarioError(
                    f"kill attempts for unit {unit_id!r} must be >= 1"
                )

    # -- worker-side queries ------------------------------------------------

    def kill_point(self, unit_id: str, attempt: int) -> str | None:
        """The kill position for this ``(unit, attempt)``, or ``None``."""
        spec = self.kills.get(unit_id)
        if spec is None:
            return None
        attempts, point = spec
        return point if attempt <= attempts else None

    def should_hang(self, unit_id: str, attempt: int) -> bool:
        return attempt <= self.hangs.get(unit_id, 0)

    @property
    def wants_workers(self) -> bool:
        """True when the plan needs a worker pool to have any effect."""
        return bool(self.kills or self.hangs)

    # -- orchestrator-side IO gate ------------------------------------------

    def io_gate(self):
        """A stateful gate for :func:`repro.ioutils.set_io_fault_gate`.

        Counts write ops (first attempts only, so retries re-test the
        same op index) and raises ``ENOSPC`` while an op's scheduled
        failure budget lasts.
        """
        remaining = {int(op): int(n) for op, n in self.enospc.items()}
        counter = {"op": 0}

        def gate(op: str, path: str, attempt: int) -> None:
            if attempt == 1:
                counter["op"] += 1
            index = counter["op"]
            if remaining.get(index, 0) > 0:
                remaining[index] -= 1
                raise OSError(
                    errno.ENOSPC,
                    f"injected ENOSPC ({op} op {index}, attempt {attempt})",
                    os.fspath(path),
                )

        return gate

    # -- reporting ----------------------------------------------------------

    def describe(self) -> str:
        head = f"worker scenario {self.scenario!r} seed {self.seed}"
        parts = []
        for unit_id, (attempts, point) in sorted(self.kills.items()):
            parts.append(
                f"SIGKILL {unit_id} at {point} (attempts 1..{attempts})"
            )
        for unit_id, attempts in sorted(self.hangs.items()):
            parts.append(f"hang {unit_id} (attempts 1..{attempts})")
        for op, n in sorted(self.enospc.items()):
            parts.append(f"ENOSPC write op {op} x{n}")
        if not parts:
            return f"{head}: no events"
        return f"{head}: " + "; ".join(parts)


def build_worker_plan(
    scenario: str,
    seed: int,
    unit_ids: "list[str] | tuple[str, ...]",
    poison_crashes: int = DEFAULT_POISON_CRASHES,
) -> WorkerFaultPlan:
    """Build the process-fault schedule for one campaign.

    ``unit_ids`` is the spec's execution order; the targeted unit is a
    seeded draw over it, so the schedule is a pure function of
    ``(scenario, seed, spec)``.
    """
    key = scenario.strip().lower()
    if key not in WORKER_SCENARIO_NAMES:
        raise ScenarioError(
            f"unknown worker fault scenario {scenario!r}; "
            f"known: {', '.join(WORKER_SCENARIO_NAMES)}"
        )
    if not unit_ids and key != "io-enospc":
        raise ScenarioError(f"scenario {key!r} needs at least one unit")
    draw = SeededDraw(seed, f"worker:{key}")
    if key == "worker-kill":
        unit = draw.choice(tuple(unit_ids), "unit")
        point = draw.choice(KILL_POINTS, "point")
        return WorkerFaultPlan(key, seed, kills={unit: (1, point)})
    if key == "worker-poison":
        unit = draw.choice(tuple(unit_ids), "unit")
        return WorkerFaultPlan(
            key, seed, kills={unit: (poison_crashes, "start")}
        )
    if key == "worker-hang":
        unit = draw.choice(tuple(unit_ids), "unit")
        return WorkerFaultPlan(key, seed, hangs={unit: 1})
    ops = draw.distinct_ints(2, *_ENOSPC_OP_RANGE, "op")
    return WorkerFaultPlan(
        key, seed, enospc={op: _ENOSPC_FAILURES for op in ops}
    )
