"""The fault injector: wires a :class:`FaultPlan` into the substrates.

One injector instance is shared by everything simulating a node: the
performance engine consults it for device health and DVFS throttle, the
SYCL runtime for USM allocation failures, the Level-Zero driver (via the
fabric) for device enumeration, and the MPI layer for rank hangs and
message corruption.  Topology faults are applied to the node's
:class:`~repro.hw.interconnect.Fabric` health overlay, so routing and
bandwidth queries degrade without any benchmark code knowing about it.

The injector also keeps two logs:

* ``history`` — every fault ever applied (for health reports);
* an *incident* buffer — drained per repetition by the resilient runner,
  becoming the per-cell provenance shown in degraded tables.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..errors import AllocationError, DeviceLostError, TransientKernelError
from ..hw.ids import StackRef
from ..hw.node import Node
from .plan import FaultClock, FaultEvent, FaultKind, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry.session import Telemetry

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies one system's fault plan as its clocks advance."""

    def __init__(
        self,
        plan: FaultPlan,
        node: Node,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.plan = plan
        self.node = node
        self.fabric = node.fabric
        self.clock = FaultClock()
        self.telemetry = telemetry
        self.history: list[str] = []
        self._incidents: dict[str, None] = {}  # ordered de-duplicated set
        self._pending_ticks = plan.tick_events()
        self._stream_events = plan.stream_events()
        self._dead: set[StackRef] = set()
        self._clock_ratio = 1.0
        self._throttle_noted = False

    def _mark(self, name: str, lane: str | None = None, **args) -> None:
        """Drop an instant marker on the trace timeline (if telemetry on)."""
        if self.telemetry is not None:
            self.telemetry.instant_fault(name, lane=lane, **args)

    # ------------------------------------------------------------------
    # logs
    # ------------------------------------------------------------------

    def note(self, message: str) -> None:
        """Record an incident (per-cell provenance + permanent history)."""
        if message not in self._incidents:
            self._incidents[message] = None
        self.history.append(message)

    def drain(self) -> list[str]:
        """Incidents since the last drain (consumed by the runner)."""
        out = list(self._incidents)
        self._incidents.clear()
        return out

    # ------------------------------------------------------------------
    # the tick clock (advanced once per benchmark repetition)
    # ------------------------------------------------------------------

    def tick(self) -> int:
        now = self.clock.tick()
        if self._clock_ratio != 1.0:
            # Excursions last one tick; clear before applying new events.
            self._clock_ratio = 1.0
            self._throttle_noted = False
        while self._pending_ticks and self._pending_ticks[0].at <= now:
            self._apply(self._pending_ticks.pop(0))
        return now

    def fast_forward(self) -> None:
        """Apply every remaining tick event immediately (health preview)."""
        while self._pending_ticks:
            self._apply(self._pending_ticks.pop(0))

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind is FaultKind.DEVICE_LOSS:
            ref = event.target
            assert isinstance(ref, StackRef)
            if ref not in self._dead:
                self._dead.add(ref)
                self.fabric.set_stack_down(ref)
                self.note(f"device {ref} lost (tick {event.at})")
                lane = (
                    self.telemetry.gpu_lane(ref)
                    if self.telemetry is not None
                    else None
                )
                self._mark(
                    f"device {ref} lost", lane=lane,
                    kind="device-loss", tick=event.at,
                )
        elif kind is FaultKind.PLANE_OUTAGE:
            self.fabric.set_plane_health(int(event.target), 0.0)
            self.note(f"Xe-Link plane {event.target} outage")
            self._mark(
                f"plane {event.target} outage",
                kind="plane-outage", plane=int(event.target),
            )
        elif kind is FaultKind.LINK_DEGRADE:
            factor = event.magnitude if event.magnitude is not None else 0.5
            self.fabric.set_plane_health(int(event.target), factor)
            self.note(f"Xe-Link plane {event.target} degraded to {factor:g}x")
            self._mark(
                f"plane {event.target} degraded",
                kind="link-degrade", plane=int(event.target), factor=factor,
            )
        elif kind is FaultKind.LINK_CUT:
            a, b = event.target  # type: ignore[misc]
            self.fabric.set_link_health(a, b, 0.0)
            self.note(f"link {a} -- {b} cut")
            self._mark(
                f"link {a} -- {b} cut", kind="link-cut",
                a=str(a), b=str(b),
            )
        elif kind is FaultKind.DVFS_THROTTLE:
            self._clock_ratio = (
                event.magnitude if event.magnitude is not None else 0.5
            )
            self._mark(
                "DVFS throttle excursion", kind="dvfs-throttle",
                ratio=self._clock_ratio,
            )
        # Stream-driven kinds never reach _apply.

    # ------------------------------------------------------------------
    # device health (engine, driver, benchmarks)
    # ------------------------------------------------------------------

    def is_dead(self, ref: StackRef) -> bool:
        return ref in self._dead

    def alive(self, refs: Iterable[StackRef]) -> list[StackRef]:
        return [r for r in refs if r not in self._dead]

    def check_stack(self, *refs: StackRef) -> None:
        """Raise :class:`DeviceLostError` if any endpoint is dead."""
        for ref in refs:
            if ref in self._dead:
                self.note(f"transfer touched lost device {ref}")
                raise DeviceLostError(f"device {ref} is lost", stack=ref)

    # ------------------------------------------------------------------
    # DVFS throttle (engine clocks)
    # ------------------------------------------------------------------

    def clock_ratio(self) -> float:
        """Current sustained-clock ratio (1.0 outside excursions)."""
        if self._clock_ratio != 1.0 and not self._throttle_noted:
            self._throttle_noted = True
            self.note(
                f"DVFS throttle excursion: clocks at "
                f"{self._clock_ratio:.0%} (tick {self.clock.now})"
            )
        return self._clock_ratio

    # ------------------------------------------------------------------
    # stream-driven faults
    # ------------------------------------------------------------------

    def _fire(self, stream: str) -> FaultEvent | None:
        count = self.clock.advance(stream)
        return self._stream_events.get(stream, {}).get(count)

    def on_kernel(self, key: str) -> None:
        """Called per kernel launch; may raise a transient failure."""
        event = self._fire("kernel")
        if event is not None:
            self.note(f"transient kernel failure injected in {key}")
            self._mark(
                f"transient kernel failure: {key}",
                kind="kernel-transient", kernel=key,
            )
            raise TransientKernelError(
                f"injected transient failure in kernel {key!r}"
            )

    def on_alloc(self, kind: str, nbytes: int) -> None:
        """Called per USM allocation; may raise an allocation failure."""
        event = self._fire("alloc")
        if event is not None:
            self.note(f"USM {kind} allocation of {nbytes} B failed (injected)")
            self._mark(
                f"USM {kind} allocation failed",
                kind="alloc-fail", usm=kind, nbytes=nbytes,
            )
            raise AllocationError(
                f"injected USM {kind} allocation failure ({nbytes} B)"
            )

    def mpi_hang_rank(self, size: int) -> int | None:
        """Rank to hang for this MPI job launch, or None."""
        event = self._fire("mpi-run")
        if event is None or size < 2:
            return None
        rank = int(event.target or 0) % size
        self.note(f"MPI rank {rank} hang injected")
        lane = (
            self.telemetry.rank_lane(rank)
            if self.telemetry is not None
            else None
        )
        self._mark(f"rank {rank} hang", lane=lane, kind="mpi-hang", rank=rank)
        return rank

    def corrupt_payload(self, payload: np.ndarray, src: int, dst: int) -> bool:
        """Flip one byte of *payload* in place when a corruption fires."""
        event = self._fire("mpi-send")
        if event is None:
            return False
        flat = payload.view(np.uint8).reshape(-1)
        if flat.size:
            flat[flat.size // 2] ^= 0xFF
        self.note(f"MPI message {src}->{dst} corrupted in flight")
        lane = (
            self.telemetry.rank_lane(src)
            if self.telemetry is not None
            else None
        )
        self._mark(
            f"message {src}->{dst} corrupted", lane=lane,
            kind="mpi-corruption", src=src, dst=dst,
        )
        return True

    # ------------------------------------------------------------------
    # integrity helper shared with the MPI layer
    # ------------------------------------------------------------------

    @staticmethod
    def checksum(payload: np.ndarray) -> int:
        return zlib.crc32(np.ascontiguousarray(payload).tobytes())

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def dead_stacks(self) -> list[StackRef]:
        return sorted(self._dead)

    def restore(self) -> None:
        """Undo topology mutations (tests re-using a shared fabric)."""
        self.fabric.reset_health()
        self._dead.clear()
        self._clock_ratio = 1.0
