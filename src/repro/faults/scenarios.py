"""Named fault scenarios (``pvc-bench --inject <scenario> --seed N``).

Each builder turns ``(seed, node)`` into a :class:`FaultPlan`.  Builders
only use :class:`SeededDraw`, so the schedule is a pure function of the
scenario name, the seed and the node shape — the determinism guarantee
documented in ``docs/fault_injection.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ScenarioError
from ..hw.ids import StackRef
from ..hw.node import Node
from .plan import FaultEvent, FaultKind, FaultPlan, SeededDraw

__all__ = [
    "SCENARIO_NAMES",
    "CAMPAIGN_SCENARIO_NAMES",
    "CampaignFaultPlan",
    "build_plan",
    "build_campaign_plan",
]

#: Ticks into the suite at which one-shot topology faults land.  Kept low
#: enough that every table command crosses them well before its last
#: cell (Table III is the shortest driver at ~48 repetitions per system).
_TOPOLOGY_TICK_RANGE = (4, 28)

#: Clock ratio during a DVFS throttle excursion: ~2.5x slowdown, far past
#: the resilient runner's quarantine threshold.
_THROTTLE_RATIO = 0.4

#: Watchdog override used by hang scenarios so a hung rank surfaces fast.
_HANG_TIMEOUT_S = 2.0


def _device_loss(draw: SeededDraw, node: Node) -> list[FaultEvent]:
    ref = draw.choice(node.stacks(), "stack")
    tick = draw.randint(*_TOPOLOGY_TICK_RANGE, "tick")
    return [FaultEvent(FaultKind.DEVICE_LOSS, at=tick, target=ref)]


def _plane_outage(draw: SeededDraw, node: Node) -> list[FaultEvent]:
    n_planes = max(1, len(node.fabric.planes))
    plane = draw.randint(0, n_planes, "plane")
    tick = draw.randint(*_TOPOLOGY_TICK_RANGE, "tick")
    return [
        FaultEvent(FaultKind.PLANE_OUTAGE, at=tick, target=plane, magnitude=0.0)
    ]


def _link_degrade(draw: SeededDraw, node: Node) -> list[FaultEvent]:
    n_planes = max(1, len(node.fabric.planes))
    plane = draw.randint(0, n_planes, "plane")
    tick = draw.randint(*_TOPOLOGY_TICK_RANGE, "tick")
    return [
        FaultEvent(FaultKind.LINK_DEGRADE, at=tick, target=plane, magnitude=0.5)
    ]


def _partition(draw: SeededDraw, node: Node) -> list[FaultEvent]:
    """Plane 0 outage plus a cut intra-card link: some pairs unroutable."""
    card = draw.randint(0, node.n_cards, "card")
    cut: object = (StackRef(card, 0), StackRef(card, min(1, node.card.n_devices - 1)))
    events = [
        FaultEvent(FaultKind.PLANE_OUTAGE, at=5, target=0, magnitude=0.0),
    ]
    if node.card.n_devices > 1:
        events.append(FaultEvent(FaultKind.LINK_CUT, at=5, target=cut))
    return events


def _kernel_flaky(draw: SeededDraw, node: Node) -> list[FaultEvent]:
    ops = draw.distinct_ints(3, 2, 200, "kernel-op")
    return [FaultEvent(FaultKind.KERNEL_TRANSIENT, at=op) for op in ops]


def _usm_pressure(draw: SeededDraw, node: Node) -> list[FaultEvent]:
    # The PCIe rows perform ~48 USM allocations per system in Table II;
    # keep the failure ops inside that window so the scenario bites.
    ops = draw.distinct_ints(2, 2, 40, "alloc-op")
    return [FaultEvent(FaultKind.ALLOC_FAIL, at=op) for op in ops]


def _throttle(draw: SeededDraw, node: Node) -> list[FaultEvent]:
    ticks = draw.distinct_ints(4, 3, 200, "excursion")
    return [
        FaultEvent(FaultKind.DVFS_THROTTLE, at=t, magnitude=_THROTTLE_RATIO)
        for t in ticks
    ]


def _mpi_hang(draw: SeededDraw, node: Node) -> list[FaultEvent]:
    run = draw.randint(1, 8, "run")
    rank_seed = draw.randint(0, 4096, "rank")
    return [FaultEvent(FaultKind.MPI_HANG, at=run, target=rank_seed)]


def _mpi_corrupt(draw: SeededDraw, node: Node) -> list[FaultEvent]:
    ops = draw.distinct_ints(2, 1, 40, "send-op")
    return [FaultEvent(FaultKind.MPI_CORRUPT, at=op) for op in ops]


_BUILDERS: dict[str, Callable[[SeededDraw, Node], list[FaultEvent]]] = {
    "device-loss": _device_loss,
    "plane-outage": _plane_outage,
    "link-degrade": _link_degrade,
    "partition": _partition,
    "kernel-flaky": _kernel_flaky,
    "usm-pressure": _usm_pressure,
    "throttle": _throttle,
    "mpi-hang": _mpi_hang,
    "mpi-corrupt": _mpi_corrupt,
}

#: Everything except ``partition`` (which intentionally makes pairs
#: unroutable, i.e. produces FAILED cells rather than degraded ones).
_ALL = tuple(name for name in _BUILDERS if name != "partition")

SCENARIO_NAMES: tuple[str, ...] = tuple(sorted(_BUILDERS)) + ("all",)

#: Orchestrator-level scenarios: instead of perturbing the simulated
#: hardware they kill the campaign driver itself, to prove the journal
#: and resume path recover.  ``crash-midrun`` stops the orchestrator
#: abruptly after a seeded unit; ``journal-truncate`` additionally tears
#: the last journal record, simulating a power cut mid-append.
CAMPAIGN_SCENARIO_NAMES: tuple[str, ...] = ("crash-midrun", "journal-truncate")


@dataclass(frozen=True, slots=True)
class CampaignFaultPlan:
    """A deterministic plan for killing the campaign orchestrator.

    ``crash_after_unit`` is a topological index: the orchestrator exits
    (as if SIGKILLed) right after journalling that unit's completion.
    ``truncate_journal`` then chops the tail of the journal so the last
    record fails its checksum — the torn-write case resume must detect.
    """

    scenario: str
    seed: int
    crash_after_unit: int | None = None
    truncate_journal: bool = False

    def describe(self) -> str:
        if self.crash_after_unit is None:
            return f"campaign scenario {self.scenario!r}: no crash"
        tail = ", then truncate journal tail" if self.truncate_journal else ""
        return (
            f"campaign scenario {self.scenario!r} seed {self.seed}: "
            f"crash after unit index {self.crash_after_unit}{tail}"
        )


def build_campaign_plan(
    scenario: str, seed: int, n_units: int
) -> CampaignFaultPlan:
    """Build the orchestrator-kill schedule for one campaign.

    The crash lands after some unit in ``[0, n_units - 1)`` so at least
    one unit always remains for ``campaign resume`` to execute.
    """
    key = scenario.strip().lower()
    if key not in CAMPAIGN_SCENARIO_NAMES:
        raise ScenarioError(
            f"unknown campaign fault scenario {scenario!r}; "
            f"known: {', '.join(CAMPAIGN_SCENARIO_NAMES)}"
        )
    draw = SeededDraw(seed, f"campaign:{key}")
    crash_after = draw.randint(0, max(1, n_units - 1), "unit")
    return CampaignFaultPlan(
        scenario=key,
        seed=seed,
        crash_after_unit=crash_after,
        truncate_journal=(key == "journal-truncate"),
    )


def build_plan(scenario: str, seed: int, node: Node) -> FaultPlan:
    """Build the deterministic fault schedule for one system."""
    key = scenario.strip().lower()
    timeout = None
    if key == "all":
        events: list[FaultEvent] = []
        for name in _ALL:
            draw = SeededDraw(seed, f"{name}:{node.name}")
            events.extend(_BUILDERS[name](draw, node))
        timeout = _HANG_TIMEOUT_S
    elif key in _BUILDERS:
        draw = SeededDraw(seed, f"{key}:{node.name}")
        events = _BUILDERS[key](draw, node)
        if key == "mpi-hang":
            timeout = _HANG_TIMEOUT_S
    else:
        raise ScenarioError(
            f"unknown fault scenario {scenario!r}; "
            f"known: {', '.join(SCENARIO_NAMES)}"
        )
    return FaultPlan(
        scenario=key,
        seed=seed,
        events=tuple(events),
        mpi_timeout_s=timeout,
    )
