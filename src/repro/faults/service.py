"""Service-level fault plans: attacking the benchmark daemon itself.

The third chaos tier.  PR 1 perturbs the simulated hardware, PR 6 the
campaign worker processes; the plans here attack the *service* layer
(:mod:`repro.service`) the way production traffic does:

* ``request-storm`` — a burst far above the admission budget, from few
  tenants, all at once: admission must shed with honest ``Retry-After``
  hints while every admitted request still completes.
* ``slow-loris`` — clients that dribble request bytes to pin handler
  threads: the per-socket timeout must disconnect them while normal
  traffic proceeds.
* ``cache-corruption`` — sealed objects in the shared memo store are
  deterministically mangled on disk: reads must quarantine and
  recompute, never crash or serve garbage.
* ``service-kill`` — SIGKILL the daemon mid-flight after a drawn number
  of completions: a restart must replay the journalled queue and a
  client retry must get byte-identical results with no lost or
  duplicated work.

Like every other plan in this package, a :class:`ServiceFaultPlan` is a
pure function of ``(scenario, seed)`` via :class:`~repro.faults.plan.SeededDraw`
— the loadgen drill and the chaos tests replay identical attacks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ScenarioError
from .plan import SeededDraw

__all__ = [
    "SERVICE_SCENARIO_NAMES",
    "ServiceFaultPlan",
    "build_service_plan",
    "corrupt_store_objects",
]

#: ``--inject`` scenarios understood by the service drills.
SERVICE_SCENARIO_NAMES = (
    "request-storm",
    "slow-loris",
    "cache-corruption",
    "service-kill",
)

#: How a ``cache-corruption`` event mangles an object file.
_CORRUPTION_MODES = ("truncate", "garbage", "flip")


@dataclass(frozen=True)
class ServiceFaultPlan:
    """A deterministic schedule of service-level attacks.

    Only the fields relevant to ``scenario`` are meaningful; the rest
    keep their neutral defaults so one plan object drives any drill.
    """

    scenario: str
    seed: int
    #: request-storm: total requests, client concurrency, tenant count.
    storm_requests: int = 0
    storm_concurrency: int = 0
    storm_tenants: int = 1
    #: slow-loris: concurrent dribbling sockets and the stall seconds
    #: (sized to exceed the server's per-socket timeout in the drill).
    loris_connections: int = 0
    loris_stall_s: float = 0.0
    #: cache-corruption: how many stored objects to mangle, and how.
    corrupt_count: int = 0
    corrupt_mode: str = "garbage"
    #: service-kill: SIGKILL after this many completed requests.
    kill_after_completions: int = 0

    def describe(self) -> str:
        head = f"service scenario {self.scenario!r} seed {self.seed}"
        if self.scenario == "request-storm":
            return (
                f"{head}: {self.storm_requests} requests from "
                f"{self.storm_tenants} tenant(s) at concurrency "
                f"{self.storm_concurrency}"
            )
        if self.scenario == "slow-loris":
            return (
                f"{head}: {self.loris_connections} socket(s) stalling "
                f"{self.loris_stall_s:g}s mid-body"
            )
        if self.scenario == "cache-corruption":
            return (
                f"{head}: mangle {self.corrupt_count} object(s) "
                f"({self.corrupt_mode})"
            )
        return (
            f"{head}: SIGKILL after {self.kill_after_completions} "
            f"completion(s)"
        )


def build_service_plan(scenario: str, seed: int) -> ServiceFaultPlan:
    """The service-fault schedule for ``(scenario, seed)`` — pure."""
    key = scenario.strip().lower()
    if key not in SERVICE_SCENARIO_NAMES:
        raise ScenarioError(
            f"unknown service fault scenario {scenario!r}; "
            f"known: {', '.join(SERVICE_SCENARIO_NAMES)}"
        )
    draw = SeededDraw(seed, f"service:{key}")
    if key == "request-storm":
        return ServiceFaultPlan(
            key,
            seed,
            storm_requests=draw.randint(200, 400, "requests"),
            storm_concurrency=draw.randint(32, 64, "concurrency"),
            storm_tenants=draw.randint(2, 4, "tenants"),
        )
    if key == "slow-loris":
        return ServiceFaultPlan(
            key,
            seed,
            loris_connections=draw.randint(2, 6, "connections"),
            loris_stall_s=float(draw.randint(2, 5, "stall")),
        )
    if key == "cache-corruption":
        return ServiceFaultPlan(
            key,
            seed,
            corrupt_count=draw.randint(1, 3, "count"),
            corrupt_mode=draw.choice(_CORRUPTION_MODES, "mode"),
        )
    return ServiceFaultPlan(
        key,
        seed,
        kill_after_completions=draw.randint(1, 8, "after"),
    )


def corrupt_store_objects(store, plan: ServiceFaultPlan) -> list[str]:
    """Apply a ``cache-corruption`` plan to a live :class:`MemoStore`.

    Targets are drawn deterministically from the store's current keys
    (coldest-first order, which is itself deterministic given the
    request history).  Returns the corrupted keys so the drill can
    assert each was quarantined and recomputed.
    """
    if plan.scenario != "cache-corruption":
        raise ScenarioError(
            f"plan is {plan.scenario!r}, not 'cache-corruption'"
        )
    keys = store.keys()
    if not keys:
        return []
    draw = SeededDraw(plan.seed, "service:cache-corruption:targets")
    count = min(plan.corrupt_count, len(keys))
    indices = (
        draw.distinct_ints(count, 0, len(keys) - 1, "index")
        if len(keys) > 1
        else [0]
    )
    victims = [keys[i] for i in indices[:count]]
    for key in victims:
        path = store.object_path(key)
        try:
            if plan.corrupt_mode == "truncate":
                with open(path, "r+b") as fh:
                    size = os.fstat(fh.fileno()).st_size
                    fh.truncate(max(size // 2, 1))
            elif plan.corrupt_mode == "flip":
                with open(path, "r+b") as fh:
                    data = fh.read()
                    if data:
                        middle = len(data) // 2
                        fh.seek(middle)
                        fh.write(bytes([data[middle] ^ 0xFF]))
            else:  # garbage
                with open(path, "r+", encoding="utf-8") as fh:
                    fh.seek(0)
                    fh.write('{"key": "not even close"')
        except OSError:
            continue
    return victims
