"""Per-run fault-injection context shared by the CLI and table drivers.

:class:`ExecutionContext` owns one :class:`FaultInjector`-equipped
:class:`~repro.sim.engine.PerfEngine` per system, accumulates the worst
cell status seen anywhere in the run, and turns it into the CLI's exit
code contract: 0 clean, 1 degraded, 2 failed.
"""

from __future__ import annotations

from ..core.result import CellStatus
from ..hw.systems import System, get_system
from ..sim.engine import PerfEngine
from ..errors import ScenarioError
from .injectors import FaultInjector
from .scenarios import SCENARIO_NAMES, build_plan

__all__ = ["ExecutionContext"]


class ExecutionContext:
    """One CLI invocation's fault-injection state.

    ``scenario=None`` is the clean mode: engines carry no injector and
    the exit code stays 0 unless something fails outright.
    """

    def __init__(self, scenario: str | None = None, seed: int = 0) -> None:
        if scenario is not None and scenario not in SCENARIO_NAMES:
            raise ScenarioError(
                f"unknown fault scenario {scenario!r}; choose from: "
                + ", ".join(SCENARIO_NAMES)
            )
        self.scenario = scenario
        self.seed = seed
        self._engines: dict[str, PerfEngine] = {}
        self._injectors: dict[str, FaultInjector] = {}
        self._worst = CellStatus.OK

    @property
    def active(self) -> bool:
        return self.scenario is not None

    # ------------------------------------------------------------------
    # engines
    # ------------------------------------------------------------------

    def engine(self, sys_name: str) -> PerfEngine:
        """The (cached) engine for a system, injector attached if active.

        Each context builds its own fresh :class:`System`, so fabric
        health mutations never leak between runs or into other contexts.
        """
        if sys_name not in self._engines:
            system: System = get_system(sys_name)
            injector = None
            if self.active:
                plan = build_plan(self.scenario, self.seed, system.node)
                injector = FaultInjector(plan, system.node)
                self._injectors[sys_name] = injector
            self._engines[sys_name] = PerfEngine(system, faults=injector)
        return self._engines[sys_name]

    def injector(self, sys_name: str) -> FaultInjector | None:
        self.engine(sys_name)
        return self._injectors.get(sys_name)

    # ------------------------------------------------------------------
    # status accounting
    # ------------------------------------------------------------------

    def record(self, status: CellStatus) -> None:
        if status > self._worst:
            self._worst = status

    @property
    def worst_status(self) -> CellStatus:
        return self._worst

    def exit_code(self) -> int:
        """0 clean, 1 degraded (faults absorbed), 2 failed cells."""
        return int(self._worst)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> str:
        if not self.active:
            return "fault injection: off"
        lines = [
            f"fault injection: scenario {self.scenario!r}, seed {self.seed}"
        ]
        for sys_name, injector in sorted(self._injectors.items()):
            lines.append(f"  {sys_name}: {injector.plan.describe()}")
        return "\n".join(lines)

    def incident_log(self) -> list[str]:
        """Every fault applied so far, across all systems, in order."""
        out: list[str] = []
        for sys_name, injector in sorted(self._injectors.items()):
            out.extend(f"{sys_name}: {msg}" for msg in injector.history)
        return out
