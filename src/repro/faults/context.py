"""Per-run fault-injection context shared by the CLI and table drivers.

:class:`ExecutionContext` owns one :class:`FaultInjector`-equipped
:class:`~repro.sim.engine.PerfEngine` per system, accumulates the worst
cell status seen anywhere in the run, and turns it into the CLI's exit
code contract: 0 clean, 1 degraded, 2 failed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.result import CellStatus
from ..hw.systems import System, get_system
from ..sim.engine import PerfEngine
from ..sim.memo import MemoCache
from ..errors import ScenarioError
from .injectors import FaultInjector
from .scenarios import SCENARIO_NAMES, build_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry.session import Telemetry

__all__ = ["ExecutionContext"]


class ExecutionContext:
    """One CLI invocation's fault-injection state.

    ``scenario=None`` is the clean mode: engines carry no injector and
    the exit code stays 0 unless something fails outright.

    Pass a :class:`~repro.telemetry.Telemetry` session to thread span
    tracing and metrics through every engine, queue, runner and injector
    this context builds (the ``trace``/``metrics``/``--manifest`` CLI
    paths do).  Without one, runs behave exactly as before — the
    telemetry hooks are all no-ops.
    """

    def __init__(
        self,
        scenario: str | None = None,
        seed: int = 0,
        telemetry: "Telemetry | None" = None,
        memo: MemoCache | None = None,
    ) -> None:
        if scenario is not None and scenario not in SCENARIO_NAMES:
            raise ScenarioError(
                f"unknown fault scenario {scenario!r}; choose from: "
                + ", ".join(SCENARIO_NAMES)
            )
        self.scenario = scenario
        self.seed = seed
        self.telemetry = telemetry
        self.trace_files: list[str] = []
        self._engines: dict[str, PerfEngine] = {}
        self._injectors: dict[str, FaultInjector] = {}
        self._worst = CellStatus.OK
        # One model-evaluation memo cache per context, shared by every
        # engine the context builds.  Context scope (not process scope)
        # keeps a campaign unit's simcache.hit/miss counters a pure
        # function of the unit, so serial and parallel campaign runs
        # stay byte-identical.  The benchmark service passes its shared
        # PersistentMemoCache here so evaluations survive across
        # requests; campaign runs must NOT (see repro.sim.memostore).
        self.memo = memo if memo is not None else MemoCache()

    @property
    def active(self) -> bool:
        return self.scenario is not None

    # ------------------------------------------------------------------
    # engines
    # ------------------------------------------------------------------

    def engine(self, sys_name: str) -> PerfEngine:
        """The (cached) engine for a system, injector attached if active.

        Each context builds its own fresh :class:`System`, so fabric
        health mutations never leak between runs or into other contexts.
        """
        if sys_name not in self._engines:
            system: System = get_system(sys_name)
            injector = None
            if self.active:
                plan = build_plan(self.scenario, self.seed, system.node)
                injector = FaultInjector(
                    plan, system.node, telemetry=self.telemetry
                )
                self._injectors[sys_name] = injector
            self._engines[sys_name] = PerfEngine(
                system,
                faults=injector,
                telemetry=self.telemetry,
                memo=self.memo,
            )
        return self._engines[sys_name]

    def injector(self, sys_name: str) -> FaultInjector | None:
        self.engine(sys_name)
        return self._injectors.get(sys_name)

    def engines_built(self) -> list[str]:
        """Names of the systems this run touched (for the manifest)."""
        return sorted(self._engines)

    def injectors_built(self) -> list[tuple[str, FaultInjector]]:
        return sorted(self._injectors.items())

    # ------------------------------------------------------------------
    # status accounting
    # ------------------------------------------------------------------

    def record(self, status: CellStatus) -> None:
        if status > self._worst:
            self._worst = status

    @property
    def worst_status(self) -> CellStatus:
        return self._worst

    def exit_code(self) -> int:
        """0 clean, 1 degraded (faults absorbed), 2 failed cells."""
        return int(self._worst)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> str:
        if not self.active:
            return "fault injection: off"
        lines = [
            f"fault injection: scenario {self.scenario!r}, seed {self.seed}"
        ]
        for sys_name, injector in sorted(self._injectors.items()):
            lines.append(f"  {sys_name}: {injector.plan.describe()}")
        return "\n".join(lines)

    def incident_log(self) -> list[str]:
        """Every fault applied so far, across all systems, in order."""
        out: list[str] = []
        for sys_name, injector in sorted(self._injectors.items()):
            out.extend(f"{sys_name}: {msg}" for msg in injector.history)
        return out

    def telemetry_summary(self) -> str:
        """One-line span/fault evidence (the exit-code contract's rider)."""
        if self.telemetry is None:
            return "telemetry: off (use trace/metrics or --manifest)"
        return self.telemetry.summary()

    def manifest(self, command: str) -> dict:
        """The run manifest document binding config, metrics and traces."""
        from ..telemetry.manifest import build_manifest

        return build_manifest(command, self, trace_files=self.trace_files)
