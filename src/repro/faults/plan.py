"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` is an immutable schedule of :class:`FaultEvent`\\ s
built once per (scenario, seed, node) triple.  Two trigger mechanisms
cover every fault class:

* **tick events** fire when the suite's repetition clock reaches ``at``
  (device loss, plane outage, link degradation/cuts, DVFS excursions);
* **stream events** fire when the ``at``-th operation of a named stream
  happens (kernel launches, USM allocations, MPI job launches, MPI sends).

Both clocks are advanced only by the code paths that consume them, so the
same ``(scenario, seed)`` always produces the same fault sequence — and a
retried operation advances the stream counter, which is what lets a
*transient* fault clear on retry.

All randomness comes from :class:`SeededDraw`, a SHA-256 counter generator
(the same construction as :mod:`repro.sim.noise`), so schedules are stable
across processes, platforms and Python hash randomisation.
"""

from __future__ import annotations

import enum
import hashlib
import struct
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "FaultClock", "SeededDraw"]


class FaultKind(enum.Enum):
    """Fault classes, each tagged with the clock stream that triggers it.

    ``stream`` is ``None`` for tick-driven events.
    """

    DEVICE_LOSS = ("device-loss", None)
    PLANE_OUTAGE = ("plane-outage", None)
    LINK_DEGRADE = ("link-degrade", None)
    LINK_CUT = ("link-cut", None)
    DVFS_THROTTLE = ("dvfs-throttle", None)
    KERNEL_TRANSIENT = ("kernel-transient", "kernel")
    ALLOC_FAIL = ("alloc-fail", "alloc")
    MPI_HANG = ("mpi-hang", "mpi-run")
    MPI_CORRUPT = ("mpi-corrupt", "mpi-send")

    def __init__(self, label: str, stream: str | None) -> None:
        self.label = label
        self.stream = stream


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is a tick index (tick events) or a 1-based operation index on
    the kind's stream (stream events).  ``target`` identifies what is hit
    (a :class:`~repro.hw.ids.StackRef`, a plane index, a link endpoint
    pair, or a rank seed) and ``magnitude`` carries a factor where one is
    meaningful (link health, clock ratio).
    """

    kind: FaultKind
    at: int
    target: object = None
    magnitude: float | None = None

    def describe(self) -> str:
        parts = [self.kind.label]
        if self.target is not None:
            parts.append(str(self.target))
        if self.magnitude is not None:
            parts.append(f"x{self.magnitude:g}")
        where = "op" if self.kind.stream else "tick"
        parts.append(f"@{where} {self.at}")
        return " ".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """The full deterministic fault schedule for one run on one system."""

    scenario: str
    seed: int
    events: tuple[FaultEvent, ...] = ()
    #: Optional override for the simulated-MPI deadlock watchdog, so hang
    #: scenarios surface in seconds instead of the default 60 s timeout.
    mpi_timeout_s: float | None = None

    def tick_events(self) -> list[FaultEvent]:
        return sorted(
            (e for e in self.events if e.kind.stream is None),
            key=lambda e: (e.at, e.kind.label, str(e.target)),
        )

    def stream_events(self) -> dict[str, dict[int, FaultEvent]]:
        """``{stream: {op_index: event}}`` for the counter-driven faults."""
        out: dict[str, dict[int, FaultEvent]] = {}
        for e in self.events:
            if e.kind.stream is not None:
                out.setdefault(e.kind.stream, {})[e.at] = e
        return out

    def describe(self) -> str:
        head = f"scenario {self.scenario!r} seed {self.seed}"
        if not self.events:
            return f"{head}: no events"
        body = "; ".join(e.describe() for e in self.events)
        return f"{head}: {body}"


class FaultClock:
    """Monotonic counters driving a plan's triggers.

    ``tick()`` advances the suite-level repetition clock; ``advance(s)``
    advances a named operation stream.  The clock is owned by the injector
    and never rewinds, which makes replays byte-identical.
    """

    def __init__(self) -> None:
        self._tick = 0
        self._streams: dict[str, int] = {}

    @property
    def now(self) -> int:
        return self._tick

    def tick(self) -> int:
        self._tick += 1
        return self._tick

    def advance(self, stream: str) -> int:
        count = self._streams.get(stream, 0) + 1
        self._streams[stream] = count
        return count

    def count(self, stream: str) -> int:
        return self._streams.get(stream, 0)


class SeededDraw:
    """SHA-256-based deterministic draws, keyed like the noise model."""

    def __init__(self, seed: int, namespace: str) -> None:
        self.seed = seed
        self.namespace = namespace

    def unit(self, *key: object) -> float:
        """A stable uniform sample in [0, 1) for (seed, namespace, key)."""
        text = f"{self.seed}|{self.namespace}|" + "|".join(map(str, key))
        digest = hashlib.sha256(text.encode()).digest()
        (word,) = struct.unpack_from("<Q", digest)
        return word / 2**64

    def randint(self, lo: int, hi: int, *key: object) -> int:
        """A stable integer in [lo, hi)."""
        if hi <= lo:
            raise ValueError(f"empty range [{lo}, {hi})")
        return lo + int(self.unit(*key) * (hi - lo))

    def choice(self, seq: Sequence, *key: object):
        return seq[self.randint(0, len(seq), *key)]

    def distinct_ints(self, n: int, lo: int, hi: int, *key: object) -> list[int]:
        """Up to *n* distinct integers in [lo, hi), in ascending order."""
        out: set[int] = set()
        for i in range(8 * n):
            out.add(self.randint(lo, hi, *key, i))
            if len(out) >= n:
                break
        return sorted(out)
