"""Deterministic fault injection for the simulated benchmark suite.

The subsystem has three layers:

* :mod:`repro.faults.plan` — seeded, immutable fault schedules
  (:class:`FaultPlan`) and the clocks that trigger them;
* :mod:`repro.faults.scenarios` — named scenarios
  (``pvc-bench --inject <name> --seed N``) built from those schedules;
* :mod:`repro.faults.injectors` — the :class:`FaultInjector` that applies
  a plan to a node as the suite's clocks advance, consulted by the
  performance engine, the SYCL/Level-Zero runtimes and the MPI layer;
* :mod:`repro.faults.process` — process-level campaign chaos
  (:class:`WorkerFaultPlan`): SIGKILLed workers, hung workers, and
  transient ``ENOSPC`` on journal/store writes, consumed by the campaign
  worker supervisor rather than the in-process engine;
* :mod:`repro.faults.service` — service-level chaos
  (:class:`ServiceFaultPlan`): request storms, slow-loris clients,
  cache corruption and daemon SIGKILLs, consumed by the benchmark
  daemon's loadgen drills (:mod:`repro.service.loadgen`).

:class:`ExecutionContext` ties one injector-equipped engine per system to
the CLI's exit-code contract (0 clean / 1 degraded / 2 failed).
"""

from .context import ExecutionContext
from .injectors import FaultInjector
from .plan import FaultClock, FaultEvent, FaultKind, FaultPlan, SeededDraw
from .process import (
    DEFAULT_POISON_CRASHES,
    KILL_POINTS,
    WORKER_SCENARIO_NAMES,
    WorkerFaultPlan,
    build_worker_plan,
)
from .service import (
    SERVICE_SCENARIO_NAMES,
    ServiceFaultPlan,
    build_service_plan,
    corrupt_store_objects,
)
from .scenarios import (
    CAMPAIGN_SCENARIO_NAMES,
    CampaignFaultPlan,
    SCENARIO_NAMES,
    build_campaign_plan,
    build_plan,
)

__all__ = [
    "ExecutionContext",
    "FaultInjector",
    "FaultClock",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "SeededDraw",
    "SCENARIO_NAMES",
    "CAMPAIGN_SCENARIO_NAMES",
    "CampaignFaultPlan",
    "build_campaign_plan",
    "build_plan",
    "DEFAULT_POISON_CRASHES",
    "KILL_POINTS",
    "WORKER_SCENARIO_NAMES",
    "WorkerFaultPlan",
    "build_worker_plan",
    "SERVICE_SCENARIO_NAMES",
    "ServiceFaultPlan",
    "build_service_plan",
    "corrupt_store_objects",
]
