"""iprof-style rendering of an aggregated profile.

The output mirrors the sections an ``iprof`` summary prints for a real
run on Aurora: one host-side API table per backend, a device profiling
table, an explicit memory-traffic table — each with
``Name | Time | Time(%) | Calls | Average | Min | Max`` columns sorted
by exclusive time descending — plus the roofline-attribution table this
reproduction adds (achieved vs model, fraction of the roofline ceiling,
bound classification).

Everything renders from the profiler's content-sorted aggregates, so
the text is byte-identical across runs with the same seed.
"""

from __future__ import annotations

from .core import ApiProfiler

__all__ = ["render_profile", "format_time_us", "format_bytes"]

#: Section headers per layer, iprof's backend naming.
_LAYER_TITLES = {
    "ze": "BACKEND_ZE",
    "sycl": "BACKEND_SYCL",
    "mpi": "BACKEND_MPI",
}


def format_time_us(us: float) -> str:
    """Human units like iprof: 1.50s / 230.12ms / 12.34us / 980ns."""
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    if us >= 1.0:
        return f"{us:.2f}us"
    return f"{us * 1e3:.0f}ns"


def format_bytes(b: float) -> str:
    """Human byte units (1024-based): 6.25GB / 2.00MB / 1.50kB / 17B."""
    if b >= 1024**3:
        return f"{b / 1024**3:.2f}GB"
    if b >= 1024**2:
        return f"{b / 1024**2:.2f}MB"
    if b >= 1024:
        return f"{b / 1024:.2f}kB"
    return f"{b:.0f}B"


def _table(
    title: str,
    rows: dict[str, dict],
    fmt,
    unit_header: str,
) -> list[str]:
    """One iprof section: sorted by total descending, with a Total row."""
    lines = [title]
    if not rows:
        lines.append("  (no calls recorded)")
        return lines
    ordered = sorted(rows.items(), key=lambda kv: (-kv[1]["total"], kv[0]))
    grand = sum(stat["total"] for _, stat in ordered)
    name_w = max(
        len("Total"), len("Name"), *(len(name) for name, _ in ordered)
    )
    header = (
        f"{'Name':>{name_w}} | {unit_header:>10} | {unit_header + '(%)':>8} | "
        f"{'Calls':>6} | {'Average':>10} | {'Min':>10} | {'Max':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, stat in ordered:
        pct = 100.0 * stat["total"] / grand if grand else 0.0
        lines.append(
            f"{name:>{name_w}} | {fmt(stat['total']):>10} | {pct:>7.2f}% | "
            f"{stat['calls']:>6d} | {fmt(stat['total'] / stat['calls']):>10} | "
            f"{fmt(stat['min']):>10} | {fmt(stat['max']):>10}"
        )
    total_calls = sum(stat["calls"] for _, stat in ordered)
    lines.append(
        f"{'Total':>{name_w}} | {fmt(grand):>10} | {100.0:>7.2f}% | "
        f"{total_calls:>6d} |"
    )
    return lines


def _host_stats(table: dict[str, dict]) -> dict[str, dict]:
    return {
        name: {
            "total": stat["total"],
            "calls": stat["calls"],
            "min": stat["min"],
            "max": stat["max"],
        }
        for name, stat in table.items()
    }


def _attribution_table(rows: list[dict]) -> list[str]:
    lines = ["Kernel roofline attribution"]
    if not rows:
        lines.append("  (no kernels profiled)")
        return lines
    name_w = max(len("Kernel"), *(len(r["kernel"]) for r in rows))
    header = (
        f"{'Kernel':>{name_w}} | {'Calls':>6} | {'Device':>10} | "
        f"{'Model(%)':>8} | {'Peak(%)':>8} | {'AI(flop/B)':>10} | Bound"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        ai = "-" if r["intensity"] is None else f"{r['intensity']:.2f}"
        lines.append(
            f"{r['kernel']:>{name_w}} | {r['calls']:>6d} | "
            f"{format_time_us(r['achieved_us']):>10} | "
            f"{r['model_pct']:>7.2f}% | {r['peak_pct']:>7.2f}% | "
            f"{ai:>10} | {r['bound']}"
        )
    return lines


def render_profile(profiler: ApiProfiler, title: str = "") -> str:
    """The full iprof-style text report for one profiled run."""
    doc = profiler.to_doc()
    out: list[str] = []
    if title:
        rule = "=" * max(0, 68 - len(title) - 4)
        out.append(f"== {title} {rule}")
        out.append("")
    for layer in ("ze", "sycl", "mpi"):
        host = doc["host"].get(layer)
        if host is None:
            continue
        out.extend(
            _table(
                f"{_LAYER_TITLES[layer]} | Host profiling",
                _host_stats(host),
                format_time_us,
                "Time",
            )
        )
        out.append("")
    out.extend(
        _table(
            "Device profiling",
            _host_stats(doc["device"]),
            format_time_us,
            "Time",
        )
    )
    out.append("")
    out.extend(
        _table(
            "Explicit memory traffic",
            _host_stats(doc["traffic"]),
            format_bytes,
            "Byte",
        )
    )
    out.append("")
    out.extend(_attribution_table(doc["kernels"]))
    out.append("")
    out.append(
        f"{doc['api_calls']} API call(s): host {format_time_us(doc['host_us'])}"
        f", device {format_time_us(doc['device_us'])}, traffic "
        f"{format_bytes(doc['traffic_bytes'])}  [digest "
        f"{profiler.digest()[:12]}]"
    )
    return "\n".join(out) + "\n"
