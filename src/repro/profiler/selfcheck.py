"""Profiler self-check: the profiler leg of ``pvc-bench health``.

Exercises the full interception surface on a small, quiet run —
driver bring-up, queue creation, USM allocation, a copy, a kernel, an
event-profiling query, a two-rank barrier — and asserts the structural
invariants the profile depends on: every layer registered its
instrumentation points, calls actually landed in each layer, the
per-stream simulated clock stayed monotonic, and the profile digest is
stable across recomputation.  Failures map to the DEGRADED tier of the
health exit-code taxonomy (a broken profiler cannot corrupt results,
only observability).
"""

from __future__ import annotations

from ..hw.selfcheck import CheckResult
from .core import (
    MPI_POINTS,
    SYCL_POINTS,
    ZE_DRIVER_POINTS,
    ZE_QUEUE_POINTS,
)

__all__ = ["profiler_selfcheck"]


def _check(name: str, condition: bool, detail: str) -> CheckResult:
    return CheckResult(name, bool(condition), detail)


def _exercise():
    """A tiny profiled run touching every instrumentation layer."""
    from ..hw.systems import get_system
    from ..runtime.mpi import SimMPI
    from ..sim.engine import PerfEngine
    from ..sim.kernel import KernelSpec
    from ..sim.noise import QUIET
    from ..telemetry import Telemetry

    telemetry = Telemetry(profile=True)
    engine = PerfEngine(get_system("aurora"), noise=QUIET, telemetry=telemetry)
    ref = engine.select_stacks(1)[0]
    queue = telemetry.sycl_queue(engine, ref)
    host = queue.malloc_host(4096)
    dev = queue.malloc_device(4096)
    queue.memcpy(dev, host, 4096)
    spec = KernelSpec(name="selfcheck.axpy", flops=2 * 512, bytes_read=4096,
                      bytes_written=4096)
    event = queue.submit(spec)
    event.profiling_info()
    queue.wait()
    queue.free(dev)
    queue.free(host)

    mpi = SimMPI(engine, n_ranks=2)
    mpi.run(lambda comm: comm.Barrier())
    return telemetry.profiler


def profiler_selfcheck() -> list[CheckResult]:
    """Structural invariants of the interception layer."""
    profiler = _exercise()
    checks: list[CheckResult] = []

    layers = profiler.layers()
    checks.append(
        _check(
            "profiler layers registered",
            set(layers) == {"ze", "sycl", "mpi"},
            f"registered: {', '.join(layers) or '(none)'}",
        )
    )

    expected = {
        "ze": set(ZE_DRIVER_POINTS) | set(ZE_QUEUE_POINTS),
        "sycl": set(SYCL_POINTS),
        "mpi": set(MPI_POINTS),
    }
    for layer, points in sorted(expected.items()):
        have = set(profiler.points(layer))
        missing = sorted(points - have)
        checks.append(
            _check(
                f"{layer} interception points registered",
                not missing,
                "all present" if not missing else "missing: " + ", ".join(missing),
            )
        )

    host = profiler.host_table()
    for layer in ("ze", "sycl", "mpi"):
        n = sum(s["calls"] for s in host.get(layer, {}).values())
        checks.append(
            _check(
                f"{layer} calls recorded",
                n > 0,
                f"{n} call(s)",
            )
        )

    checks.append(
        _check(
            "stream clocks monotonic",
            not profiler.clock_violations,
            "no violations"
            if not profiler.clock_violations
            else "; ".join(profiler.clock_violations[:3]),
        )
    )

    rows = profiler.kernel_attribution()
    checks.append(
        _check(
            "kernel attribution joins the roofline",
            bool(rows)
            and all(
                r["bound"] in ("compute", "memory", "latency")
                and r["model_pct"] > 0.0
                for r in rows
            ),
            f"{len(rows)} kernel(s) attributed",
        )
    )

    d1, d2 = profiler.digest(), profiler.digest()
    checks.append(
        _check(
            "profile digest stable",
            d1 == d2,
            d1[:12],
        )
    )
    return checks
