"""Deterministic collapsed-stack (flamegraph) export from the tracer.

``iprof -f`` can emit flamegraph-compatible output for a traced run;
this module does the same for the simulated telemetry: every COMPLETE
trace event becomes a frame, nested by smallest-enclosing-interval on
its lane, and each line is the classic collapsed format

    lane;outer;inner <value>

with the value in integer nanoseconds of *self* time (duration minus
direct children).  Lines are merged by frame path and emitted in lexical
order so the export is byte-stable for a given trace.
"""

from __future__ import annotations

from ..telemetry.trace import COMPLETE, TraceEvent, Tracer

__all__ = ["collapsed_stacks", "export_collapsed"]

_EPS_US = 1e-9


def _frame(name: str) -> str:
    # ";" separates frames in the collapsed format; scrub it from names.
    return name.replace(";", ",")


def _lane_events(tracer: Tracer, lane_name: str) -> list[TraceEvent]:
    events = [
        ev
        for ev in tracer.events
        if ev.lane == lane_name and ev.phase == COMPLETE
    ]
    # Parents before children: earlier start first, then longer first so
    # an enclosing span precedes the spans it contains; spans outrank
    # same-shape kernel events at identical extents.
    events.sort(
        key=lambda ev: (
            ev.start_us,
            -ev.end_us,
            0 if ev.category == "span" else 1,
            ev.name,
        )
    )
    return events


def collapsed_stacks(tracer: Tracer) -> list[str]:
    """Collapsed-stack lines (``path value``), merged and sorted."""
    weights: dict[str, int] = {}
    for lane_name in tracer.lanes():
        stack: list[TraceEvent] = []
        child_us: dict[int, float] = {}
        events = _lane_events(tracer, lane_name)

        def emit(ev: TraceEvent, path: tuple[str, ...]) -> None:
            self_us = ev.duration_us - child_us.pop(id(ev), 0.0)
            value = int(round(self_us * 1000.0))
            if value <= 0:
                return
            key = ";".join(path)
            weights[key] = weights.get(key, 0) + value

        paths: dict[int, tuple[str, ...]] = {}
        for ev in events:
            while stack and ev.start_us >= stack[-1].end_us - _EPS_US:
                done = stack.pop()
                emit(done, paths.pop(id(done)))
            if stack:
                parent = stack[-1]
                child_us[id(parent)] = (
                    child_us.get(id(parent), 0.0) + ev.duration_us
                )
                paths[id(ev)] = paths[id(parent)] + (_frame(ev.name),)
            else:
                paths[id(ev)] = (_frame(lane_name), _frame(ev.name))
            stack.append(ev)
        while stack:
            done = stack.pop()
            emit(done, paths.pop(id(done)))
    return [f"{path} {value}" for path, value in sorted(weights.items())]


def export_collapsed(tracer: Tracer) -> str:
    """The collapsed-stack file body (one line per unique frame path)."""
    lines = collapsed_stacks(tracer)
    return "\n".join(lines) + ("\n" if lines else "")
