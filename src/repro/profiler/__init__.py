"""iprof/THAPI-style API profiling over the simulated runtime.

The paper's measurement methodology leans on API-level tracing of the
Level Zero / SYCL runtime (THAPI/iprof on Aurora).  This package gives
the simulated runs the same observability:

* :mod:`repro.profiler.core` — the interception layer: explicit
  instrumentation points in ``runtime.ze`` / ``runtime.sycl`` /
  ``runtime.mpi`` record per-API host time, device time and bytes moved
  over the simulated clock into an :class:`ApiProfiler`;
* :mod:`repro.profiler.report` — iprof-style summary tables (host /
  device / traffic sections plus per-kernel roofline attribution);
* :mod:`repro.profiler.flamegraph` — a deterministic collapsed-stack
  exporter fed from the telemetry span tracer;
* :mod:`repro.profiler.baseline` — ``BENCH_<n>.json`` perf-regression
  snapshots with a tolerance-based comparator;
* :mod:`repro.profiler.driver` — the ``pvc-bench profile`` runner;
* :mod:`repro.profiler.selfcheck` — the profiler leg of
  ``pvc-bench health``.

``driver`` and ``selfcheck`` are imported lazily by the CLI (they pull
in the benchmark stack); this package root stays light so
:class:`~repro.telemetry.Telemetry` can construct an
:class:`ApiProfiler` without an import cycle.
"""

from .core import ApiCall, ApiProfiler, KernelSample, PROFILE_SCHEMA
from .baseline import (
    BASELINE_SCHEMA,
    BaselineComparison,
    build_snapshot,
    compare_snapshots,
    load_baseline,
    write_baseline,
)
from .flamegraph import collapsed_stacks, export_collapsed
from .report import render_profile

__all__ = [
    "ApiCall",
    "ApiProfiler",
    "KernelSample",
    "PROFILE_SCHEMA",
    "BASELINE_SCHEMA",
    "BaselineComparison",
    "build_snapshot",
    "compare_snapshots",
    "load_baseline",
    "write_baseline",
    "collapsed_stacks",
    "export_collapsed",
    "render_profile",
]
