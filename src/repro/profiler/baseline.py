"""Perf-regression baselines: ``BENCH_<n>.json`` snapshots.

A baseline snapshot pins, per ``bench@system``, the simulated figure of
merit and the profile aggregates of a profiled run.  The comparator
re-runs the same set, joins by key, and issues a tolerance-based verdict
for the fields that gate regressions:

* ``fom`` — higher is better (GFLOP/s, GB/s);
* ``device_us`` — lower is better (aggregate device time);
* ``sim_cache_hit_rate`` — higher is better (campaign entries only: the
  model-evaluation memo cache going cold is a perf bug even when every
  test still passes);
* ``storm_p99_s`` — lower is better (service entries: the loadgen
  storm's p99 latency, gated with a wide tolerance because it is
  wall-clock);
* ``service_cache_hit_rate`` — higher is better (service entries: the
  daemon's warm result-cache hit rate under storm, expected 1.0);
* ``points_per_s`` — higher is better (sweep entries: batch-engine
  roofline evaluations per second over the gate sweep);
* ``batch_speedup`` — higher is better (sweep entries: batch vs
  sampled-scalar points-per-second ratio; ``profile sweep``
  additionally enforces the hard 50x floor independent of any
  baseline).

Ungated fields (``wall_s``, call counts, ...) ride along for the
record; wall-clock in particular is machine-dependent and must never
gate.  Entries lacking a gated field simply skip it, which is what
keeps older baselines (BENCH_0) comparable after new fields appear.

A relative drift beyond the tolerance in the *bad* direction is a
regression (exit code 1, ``ExitCode.MEASUREMENT``); drift in the good
direction, new entries, and entries missing from the current run are
reported but do not fail the comparison — the baseline is refreshed
with ``--write-baseline`` when an improvement should be locked in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigurationError
from ..ioutils import atomic_write_text, canonical_json, sha256_text

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_TOLERANCE",
    "BaselineComparison",
    "Delta",
    "build_snapshot",
    "compare_snapshots",
    "load_baseline",
    "write_baseline",
]

BASELINE_SCHEMA = "repro.profiler.baseline/v1"

#: Relative drift allowed before a gated field regresses.
DEFAULT_TOLERANCE = 0.05

#: field name -> direction ("higher" / "lower" is better).
_GATED_FIELDS = {
    "fom": "higher",
    "device_us": "lower",
    "sim_cache_hit_rate": "higher",
    "storm_p99_s": "lower",
    "service_cache_hit_rate": "higher",
    "points_per_s": "higher",
    "batch_speedup": "higher",
}


@dataclass(frozen=True, slots=True)
class Delta:
    """One compared field of one ``bench@system`` entry."""

    key: str
    metric: str
    base: float
    current: float
    verdict: str  # "ok" | "improved" | "regressed" | "new" | "missing"

    @property
    def ratio(self) -> float:
        if self.base == 0:
            return 1.0 if self.current == 0 else float("inf")
        return self.current / self.base


@dataclass(frozen=True, slots=True)
class BaselineComparison:
    """The outcome of comparing a current snapshot to a baseline."""

    tolerance: float
    deltas: tuple[Delta, ...] = field(default_factory=tuple)

    @property
    def regressed(self) -> bool:
        return any(d.verdict == "regressed" for d in self.deltas)

    @property
    def regressions(self) -> tuple[Delta, ...]:
        return tuple(d for d in self.deltas if d.verdict == "regressed")

    def render(self) -> str:
        lines = [
            f"baseline comparison (tolerance {self.tolerance:.1%}):"
        ]
        for d in self.deltas:
            if d.verdict in ("new", "missing"):
                lines.append(f"  {d.verdict:>9}  {d.key}")
                continue
            lines.append(
                f"  {d.verdict:>9}  {d.key} {d.metric}: "
                f"{d.base:.6g} -> {d.current:.6g} (x{d.ratio:.4f})"
            )
        verdict = "REGRESSED" if self.regressed else "OK"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines) + "\n"


def build_snapshot(
    entries: list[dict], tolerance: float | None = None
) -> dict:
    """A baseline document from per-bench entry dicts.

    Each entry must carry ``bench`` and ``system``; the pair keys the
    snapshot.  Entries are stored under sorted keys so the serialized
    document is byte-stable.  ``tolerance`` overrides the default gate
    width recorded in the document (wall-clock-dominated snapshots like
    the service storm use a wide one).
    """
    keyed: dict[str, dict] = {}
    for entry in entries:
        try:
            key = f"{entry['bench']}@{entry['system']}"
        except KeyError as exc:
            raise ConfigurationError(
                f"baseline entry missing {exc.args[0]!r}"
            ) from exc
        if key in keyed:
            raise ConfigurationError(f"duplicate baseline entry {key!r}")
        keyed[key] = dict(entry)
    if tolerance is None:
        tolerance = DEFAULT_TOLERANCE
    if tolerance < 0:
        raise ConfigurationError("tolerance must be non-negative")
    doc = {
        "schema": BASELINE_SCHEMA,
        "tolerance": tolerance,
        "entries": {k: keyed[k] for k in sorted(keyed)},
    }
    doc["digest"] = sha256_text(canonical_json(doc))
    return doc


def write_baseline(path: str | Path, doc: dict) -> Path:
    """Atomically write a snapshot as pretty, sorted, newline-terminated
    JSON (stable for committing to git)."""
    path = Path(path)
    body = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    atomic_write_text(path, body)
    return path


def load_baseline(path: str | Path) -> dict:
    """Read and schema-validate a snapshot written by :func:`write_baseline`."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"baseline not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"baseline {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"baseline {path} has unsupported schema "
            f"{doc.get('schema') if isinstance(doc, dict) else None!r} "
            f"(expected {BASELINE_SCHEMA!r})"
        )
    return doc


def compare_snapshots(
    base: dict, current: dict, tolerance: float | None = None
) -> BaselineComparison:
    """Compare two snapshot documents (baseline first)."""
    if tolerance is None:
        tolerance = float(base.get("tolerance", DEFAULT_TOLERANCE))
    if tolerance < 0:
        raise ConfigurationError("tolerance must be non-negative")
    base_entries = base.get("entries", {})
    cur_entries = current.get("entries", {})
    deltas: list[Delta] = []
    for key in sorted(set(base_entries) | set(cur_entries)):
        if key not in cur_entries:
            deltas.append(Delta(key, "-", 0.0, 0.0, "missing"))
            continue
        if key not in base_entries:
            deltas.append(Delta(key, "-", 0.0, 0.0, "new"))
            continue
        for metric, direction in _GATED_FIELDS.items():
            if metric not in base_entries[key]:
                continue
            b = float(base_entries[key][metric])
            c = float(cur_entries[key].get(metric, 0.0))
            drift = (c - b) / b if b else (0.0 if c == 0 else float("inf"))
            if direction == "lower":
                drift = -drift
            # drift > 0 now means "got better" for either direction.
            if drift < -tolerance:
                verdict = "regressed"
            elif drift > tolerance:
                verdict = "improved"
            else:
                verdict = "ok"
            deltas.append(Delta(key, metric, b, c, verdict))
    return BaselineComparison(tolerance=tolerance, deltas=tuple(deltas))
