"""The ``pvc-bench profile`` runner: profiled benchmark executions.

Runs a benchmark with a profiling telemetry session attached, the same
plan the ``trace``/``metrics`` commands use, plus a small staging phase
(USM allocation + host-to-device copies at the benchmark's working-set
size) so the profile exercises the full API surface an iprof trace of
the real run shows — allocation, copy-in, kernel launches,
synchronisation — not just the kernel loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.result import BenchmarkResult
from ..core.runner import RunPlan
from ..errors import UnknownBenchmarkError
from ..faults import ExecutionContext
from ..telemetry import Telemetry
from .core import ApiProfiler

__all__ = [
    "CAMPAIGN_BENCH_MATRIX",
    "PROFILE_BENCHES",
    "SMOKE_SYSTEMS",
    "ProfiledRun",
    "bench_campaign",
    "profile_bench",
    "profile_campaign_set",
    "profile_smoke_set",
    "run_bench",
]

#: Benchmarks the profiler driver can run (same set as trace/metrics).
PROFILE_BENCHES = ("gemm", "triad", "p2p")

#: Systems the smoke profile set covers.
SMOKE_SYSTEMS = ("aurora", "dawn")

#: Repetition plan shared with the trace/metrics commands: long enough
#: that every fault scenario's trigger tick falls inside the run.
_PLAN = RunPlan(repetitions=30, warmup=2)


#: Functional payload carried by staging copies.  The *timed* (and
#: profiled) size is the paper-scale working set; the payload keeps the
#: simulation's host memory bounded, same idiom as the benchmarks.
_STAGE_PAYLOAD = 1 << 20


def _stage_gemm(engine, queue) -> None:
    """Allocate the GEMM operands and copy A and B to the device."""
    from ..sim.kernel import GEMM_N

    nbytes = GEMM_N * GEMM_N * 8  # FP64 matrices, paper scale
    host = queue.malloc_host(_STAGE_PAYLOAD)
    a = queue.malloc_device(_STAGE_PAYLOAD)
    b = queue.malloc_device(_STAGE_PAYLOAD)
    c = queue.malloc_device(_STAGE_PAYLOAD)
    queue.memcpy(a, host, _STAGE_PAYLOAD, timed_nbytes=nbytes)
    queue.memcpy(b, host, _STAGE_PAYLOAD, timed_nbytes=nbytes)
    queue.wait()
    for alloc in (c, b, a, host):
        queue.free(alloc)


def _stage_triad(engine, queue) -> None:
    """Allocate the three STREAM arrays and initialise one from host."""
    from ..micro.triad import triad_array_bytes

    nbytes = triad_array_bytes(engine)
    host = queue.malloc_host(_STAGE_PAYLOAD)
    arrays = [queue.malloc_device(_STAGE_PAYLOAD) for _ in range(3)]
    queue.memcpy(arrays[0], host, _STAGE_PAYLOAD, timed_nbytes=nbytes)
    queue.wait()
    for alloc in reversed(arrays):
        queue.free(alloc)
    queue.free(host)


def _stage_p2p(engine, queue) -> None:
    """Pin the message buffer the P2P exchange sends."""
    host = queue.malloc_host(_STAGE_PAYLOAD)
    queue.free(host)


_STAGING = {
    "gemm": _stage_gemm,
    "triad": _stage_triad,
    "p2p": _stage_p2p,
}


def run_bench(ctx: ExecutionContext, bench: str, system: str) -> BenchmarkResult:
    """Run one profiled/traced benchmark under *ctx*'s telemetry session.

    Shared by ``pvc-bench profile`` and the trace/metrics commands: same
    benchmark construction, same repetition plan, same scope.
    """
    from ..micro.gemm import Gemm
    from ..micro.p2p import P2PBandwidth
    from ..micro.triad import Triad

    if bench not in PROFILE_BENCHES:
        raise UnknownBenchmarkError(
            f"unknown benchmark {bench!r}; choose from: "
            + ", ".join(PROFILE_BENCHES)
        )
    engine = ctx.engine(system)
    if bench == "gemm":
        instance, n_stacks = Gemm(), engine.node.n_stacks
    elif bench == "triad":
        instance, n_stacks = Triad(), engine.node.n_stacks
    else:  # p2p: single pair, exercised through the simulated MPI layer
        instance, n_stacks = P2PBandwidth("remote"), 1
    tel = ctx.telemetry
    if tel is not None and getattr(tel, "profiler", None) is not None:
        ref = engine.select_stacks(1)[0]
        queue = tel.sycl_queue(engine, ref)
        _STAGING[bench](engine, queue)
    result = instance.measure(engine, n_stacks=n_stacks, plan=_PLAN)
    if result.provenance is not None:
        ctx.record(result.provenance.status)
    return result


@dataclass
class ProfiledRun:
    """One profiled benchmark execution and its aggregates."""

    bench: str
    system: str
    ctx: ExecutionContext
    telemetry: Telemetry
    result: BenchmarkResult = field(repr=False)

    @property
    def profiler(self) -> ApiProfiler:
        assert self.telemetry.profiler is not None
        return self.telemetry.profiler

    @property
    def fom(self) -> float:
        best = self.result.best
        return best.work / best.elapsed_s

    @property
    def fom_unit(self) -> str:
        return self.result.best.unit

    def title(self) -> str:
        return f"{self.bench} on {self.system} [{self.result.scope.name}]"

    def entry(self) -> dict:
        """The baseline-snapshot entry for this run (see baseline.py)."""
        p = self.profiler
        attribution = p.kernel_attribution()
        return {
            "bench": self.bench,
            "system": self.system,
            "fom": self.fom,
            "fom_unit": self.fom_unit,
            "api_calls": p.n_calls,
            "host_us": p.host_total_us(),
            "device_us": p.device_total_us(),
            "traffic_bytes": p.traffic_total_bytes(),
            "kernels": len(attribution),
            # Ungated per-kernel rows: ``bench trend`` uses these to
            # attribute a device_us/FOM delta to the kernel (and the
            # roofline bound) that moved.  Older baselines without them
            # still compare — the gated fields above are unchanged.
            "kernel_attribution": attribution,
            "profile_digest": p.digest(),
        }

    def report(self) -> str:
        from .report import render_profile

        return render_profile(self.profiler, title=self.title())


def profile_bench(
    bench: str,
    system: str,
    *,
    scenario: str | None = None,
    seed: int = 0,
) -> ProfiledRun:
    """Run one benchmark under a fresh profiling telemetry session."""
    telemetry = Telemetry(profile=True)
    ctx = ExecutionContext(scenario, seed, telemetry=telemetry)
    result = run_bench(ctx, bench, system)
    return ProfiledRun(
        bench=bench, system=system, ctx=ctx, telemetry=telemetry, result=result
    )


def profile_smoke_set(
    *, scenario: str | None = None, seed: int = 0
) -> list[ProfiledRun]:
    """Profile every bench on every smoke system (the CI baseline set)."""
    return [
        profile_bench(bench, system, scenario=scenario, seed=seed)
        for system in SMOKE_SYSTEMS
        for bench in PROFILE_BENCHES
    ]


#: The (spec, jobs) grid ``pvc-bench profile full`` benchmarks.  The
#: smoke spec exercises the scheduler cheaply at both ends; the paper
#: spec is the run whose roofline evaluations give the sim memo cache a
#: meaningful hit rate.
CAMPAIGN_BENCH_MATRIX = (
    ("smoke", 1),
    ("smoke", 4),
    ("paper", 1),
    ("paper", 4),
)


def bench_campaign(spec: str = "smoke", jobs: int = 1) -> dict:
    """One campaign benchmark entry: wall-clock + sim-cache counters.

    Runs the named spec in a throwaway directory and distils the
    baseline entry from its manifest.  ``wall_s`` is informational —
    wall-clock depends on the machine, so it is *not* a gated baseline
    field — while ``sim_cache_hit_rate`` is a pure function of the spec
    and the model code, and gates regressions (a cache that stops
    hitting is a perf bug even when tests still pass).
    """
    import contextlib
    import io
    import json
    import shutil
    import tempfile
    import time

    from ..campaign.orchestrator import Orchestrator
    from ..campaign.spec import get_spec

    workdir = tempfile.mkdtemp(prefix="pvc-bench-campaign-")
    try:
        orch = Orchestrator(workdir, spec=get_spec(spec), jobs=jobs)
        quiet = io.StringIO()
        start = time.perf_counter()
        with contextlib.redirect_stderr(quiet):
            code = orch.run()
        wall_s = time.perf_counter() - start
        with open(orch.manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    metrics = manifest["campaign"]["metrics"]

    def total(name: str) -> float:
        return sum(
            s["value"] for s in metrics.get(name, {}).get("samples", [])
        )

    hits, misses = total("simcache.hit"), total("simcache.miss")
    evals = hits + misses
    return {
        "bench": f"campaign-{spec}",
        "system": f"jobs{jobs}",
        "exit": int(code),
        "units": len(manifest["campaign"]["units"]),
        "wall_s": wall_s,
        "sim_cache_hits": hits,
        "sim_cache_misses": misses,
        "sim_cache_hit_rate": hits / evals if evals else 0.0,
    }


def profile_campaign_set() -> list[dict]:
    """Baseline entries for the campaign benchmark matrix."""
    return [bench_campaign(spec, jobs) for spec, jobs in CAMPAIGN_BENCH_MATRIX]
