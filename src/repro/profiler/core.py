"""The API interception layer: records and aggregates runtime calls.

iprof (THAPI) works by intercepting every Level Zero / OpenCL / CUDA
entry point through LTTng tracepoints and aggregating host time, device
time and bytes moved per API name.  The simulated runtime has no
``LD_PRELOAD`` surface, so the interception is explicit: the runtime
layers (``runtime.ze``, ``runtime.sycl``, ``runtime.mpi``) and the
performance engine call :meth:`ApiProfiler.record` /
:meth:`ApiProfiler.kernel` at each instrumentation point whenever the
telemetry session carries a profiler.

Determinism contract (same as the tracer/metrics exporters): MPI ranks
run as threads, so the *insertion order* of records is scheduler
dependent — every aggregation therefore sorts the raw records by their
full content before folding, and all times derive from the simulated
clock plus a fixed per-API host-overhead table, never the wall clock.
Two runs with the same seed produce byte-identical profile documents.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..ioutils import canonical_json, sha256_text

__all__ = [
    "LAYERS",
    "PROFILE_SCHEMA",
    "ZE_DRIVER_POINTS",
    "ZE_QUEUE_POINTS",
    "SYCL_POINTS",
    "MPI_POINTS",
    "host_overhead_us",
    "ApiCall",
    "KernelSample",
    "ApiProfiler",
]

PROFILE_SCHEMA = "repro.profiler.profile/v1"

#: Runtime layers the interception surface covers (iprof's "backends").
LAYERS = ("ze", "sycl", "mpi")

#: Instrumentation points the driver layer registers (runtime.ze).
ZE_DRIVER_POINTS = ("zeInit", "zeDeviceGet", "zeDeviceGetSubDevices")

#: Instrumentation points every queue registers (runtime.sycl -> L0).
ZE_QUEUE_POINTS = (
    "zeCommandQueueCreate",
    "zeCommandListAppendLaunchKernel",
    "zeCommandListAppendMemoryCopy",
    "zeCommandQueueExecuteCommandLists",
    "zeCommandQueueSynchronize",
)

#: SYCL USM + event instrumentation points (runtime.sycl).
SYCL_POINTS = (
    "sycl::malloc_device",
    "sycl::malloc_host",
    "sycl::malloc_shared",
    "sycl::free",
    "sycl::event::get_profiling_info",
)

#: MPI instrumentation points (runtime.mpi).
MPI_POINTS = (
    "MPI_Isend",
    "MPI_Irecv",
    "MPI_Wait",
    "MPI_Barrier",
    "MPI_Allreduce",
    "MPI_Bcast",
    "MPI_Gather",
    "MPI_Allgather",
)

#: Deterministic host-side cost charged per intercepted call, in
#: simulated microseconds.  Shaped after the host-time distribution an
#: iprof trace of the paper's benchmarks shows: driver bring-up is
#: hundreds of us, pinned-host allocation is slower than device
#: allocation, per-append costs are single-digit us.
_HOST_OVERHEAD_US = {
    "zeInit": 120.0,
    "zeDeviceGet": 6.0,
    "zeDeviceGetSubDevices": 3.0,
    "zeCommandQueueCreate": 21.0,
    "zeCommandListAppendLaunchKernel": 9.0,
    "zeCommandListAppendMemoryCopy": 7.0,
    "zeCommandQueueExecuteCommandLists": 13.0,
    "zeCommandQueueSynchronize": 4.0,
    "sycl::malloc_device": 38.0,
    "sycl::malloc_host": 55.0,
    "sycl::malloc_shared": 46.0,
    "sycl::free": 12.0,
    "sycl::event::get_profiling_info": 1.0,
    "MPI_Isend": 5.0,
    "MPI_Irecv": 3.0,
    "MPI_Wait": 2.0,
    "MPI_Barrier": 4.0,
    "MPI_Allreduce": 6.0,
    "MPI_Bcast": 4.0,
    "MPI_Gather": 5.0,
    "MPI_Allgather": 6.0,
}

_DEFAULT_HOST_OVERHEAD_US = 2.0


def host_overhead_us(name: str) -> float:
    """The fixed host-side cost charged for one call to *name*."""
    return _HOST_OVERHEAD_US.get(name, _DEFAULT_HOST_OVERHEAD_US)


@dataclass(frozen=True, slots=True)
class ApiCall:
    """One intercepted API call.

    ``op`` refines the device/traffic attribution (the kernel or copy
    the append launched) while ``name`` stays the API entry point, so
    the host table reads like an iprof API section and the device table
    like its device-profiling section.  ``stream`` identifies the
    simulated command queue (``<system>:<card>.<stack>``) and
    ``clock_us`` its clock at retirement; the profiler checks per-stream
    monotonicity (the ``health`` self-check surfaces violations).
    """

    layer: str
    name: str
    host_us: float
    device_us: float = 0.0
    bytes_moved: float = 0.0
    op: str = ""
    stream: str = ""
    clock_us: float = -1.0

    def order_key(self) -> tuple:
        return (
            self.layer,
            self.name,
            self.op,
            self.stream,
            self.clock_us,
            self.host_us,
            self.device_us,
            self.bytes_moved,
        )


@dataclass(frozen=True, slots=True)
class KernelSample:
    """One profiled kernel execution joined against its roofline model.

    ``achieved_s`` is the simulated (noise-bearing) execution time;
    ``compute_s``/``memory_s``/``latency_s`` are the model decomposition
    from :class:`~repro.sim.roofline.RooflinePoint`, and
    ``compute_rate``/``mem_bw`` the achieved-rate ceilings the model
    used — enough to attribute the kernel without re-querying the engine
    (which would re-trigger fault-injection notes).
    """

    name: str
    system: str
    n_stacks: int
    achieved_s: float
    compute_s: float
    memory_s: float
    latency_s: float
    flops: float
    nbytes: float
    compute_rate: float
    mem_bw: float

    @property
    def model_s(self) -> float:
        return max(self.compute_s, self.memory_s) + self.latency_s

    def order_key(self) -> tuple:
        return (
            self.name,
            self.system,
            self.n_stacks,
            self.achieved_s,
            self.compute_s,
            self.memory_s,
            self.latency_s,
        )


def _classify(compute_s: float, memory_s: float, latency_s: float) -> str:
    if latency_s > max(compute_s, memory_s):
        return "latency"
    return "compute" if compute_s >= memory_s else "memory"


@dataclass
class _Stat:
    """Folded per-name statistics (time or bytes, depending on table)."""

    calls: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def add(self, value: float) -> None:
        self.calls += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def to_doc(self) -> dict:
        return {
            "calls": self.calls,
            "total": self.total,
            "min": self.min if self.calls else 0.0,
            "max": self.max,
        }


class ApiProfiler:
    """Collects intercepted API calls and kernel samples for one run.

    Thread safe: MPI rank threads record concurrently.  All query
    methods aggregate over a content-sorted copy of the raw records, so
    results are independent of thread interleaving.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: list[ApiCall] = []
        self._kernels: list[KernelSample] = []
        self._points: dict[str, set[str]] = {}
        self._stream_clock: dict[str, float] = {}
        self._stream_serial: dict[str, int] = {}
        self.clock_violations: list[str] = []

    # ------------------------------------------------------------------
    # interception points
    # ------------------------------------------------------------------

    def register(self, layer: str, *names: str) -> None:
        """Declare instrumentation points for a runtime layer.

        Registration is idempotent; the ``health`` self-check asserts
        the expected points are present after exercising the runtime.
        """
        self._check_layer(layer)
        with self._lock:
            self._points.setdefault(layer, set()).update(names)

    def points(self, layer: str | None = None) -> tuple[str, ...]:
        """Registered instrumentation points (for one layer, or all)."""
        with self._lock:
            if layer is not None:
                return tuple(sorted(self._points.get(layer, ())))
            return tuple(
                sorted(set().union(*self._points.values()))
                if self._points
                else ()
            )

    def layers(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._points))

    def stream(self, base: str) -> str:
        """A stream name for a newly opened queue on *base*.

        Each queue owns an independent simulated clock, so a second
        queue on the same device must not share the first one's stream
        (its clock restarts at zero and would trip the monotonicity
        check): the first queue keeps the bare name, later ones get a
        ``/qN`` suffix.  Queue creation happens sequentially in setup
        code, so the numbering is deterministic.
        """
        with self._lock:
            n = self._stream_serial.get(base, 0)
            self._stream_serial[base] = n + 1
        return base if n == 0 else f"{base}/q{n}"

    @staticmethod
    def _check_layer(layer: str) -> None:
        if layer not in LAYERS:
            raise ValueError(
                f"unknown profiler layer {layer!r}; expected one of "
                + ", ".join(LAYERS)
            )

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(
        self,
        name: str,
        layer: str,
        *,
        host_us: float | None = None,
        device_us: float = 0.0,
        bytes_moved: float = 0.0,
        op: str = "",
        stream: str = "",
        clock_us: float | None = None,
    ) -> ApiCall:
        """Record one intercepted call.

        ``host_us`` defaults to the fixed overhead table; pass an
        explicit value for calls that block (``MPI_Wait``).  Passing
        ``clock_us`` with a ``stream`` enrols the call in the per-stream
        clock-monotonicity check.
        """
        self._check_layer(layer)
        call = ApiCall(
            layer=layer,
            name=name,
            host_us=host_overhead_us(name) if host_us is None else host_us,
            device_us=device_us,
            bytes_moved=bytes_moved,
            op=op,
            stream=stream,
            clock_us=clock_us if clock_us is not None else -1.0,
        )
        with self._lock:
            self._points.setdefault(layer, set()).add(name)
            if clock_us is not None and stream:
                last = self._stream_clock.get(stream)
                if last is not None and clock_us < last - 1e-9:
                    self.clock_violations.append(
                        f"{stream}: {name} clock went backwards "
                        f"({clock_us:.3f}us after {last:.3f}us)"
                    )
                self._stream_clock[stream] = max(last or 0.0, clock_us)
            self._calls.append(call)
        return call

    def kernel(self, sample: KernelSample) -> None:
        """Record one profiled kernel execution (engine instrumentation)."""
        with self._lock:
            self._kernels.append(sample)

    # ------------------------------------------------------------------
    # deterministic views of the raw records
    # ------------------------------------------------------------------

    def calls(self) -> list[ApiCall]:
        """Raw calls in content order (thread-schedule independent)."""
        with self._lock:
            return sorted(self._calls, key=ApiCall.order_key)

    def kernels(self) -> list[KernelSample]:
        with self._lock:
            return sorted(self._kernels, key=KernelSample.order_key)

    @property
    def n_calls(self) -> int:
        with self._lock:
            return len(self._calls)

    @property
    def n_kernels(self) -> int:
        with self._lock:
            return len(self._kernels)

    # ------------------------------------------------------------------
    # aggregation (iprof's three sections + the attribution join)
    # ------------------------------------------------------------------

    def host_table(self) -> dict[str, dict[str, dict]]:
        """Per-layer, per-API host-time stats (iprof's API sections)."""
        out: dict[str, dict[str, _Stat]] = {}
        for call in self.calls():
            out.setdefault(call.layer, {}).setdefault(
                call.name, _Stat()
            ).add(call.host_us)
        return {
            layer: {name: stat.to_doc() for name, stat in sorted(names.items())}
            for layer, names in sorted(out.items())
        }

    def device_table(self) -> dict[str, dict]:
        """Per-operation device-time stats (iprof's device profiling)."""
        out: dict[str, _Stat] = {}
        for call in self.calls():
            if call.device_us > 0.0:
                out.setdefault(call.op or call.name, _Stat()).add(
                    call.device_us
                )
        return {name: stat.to_doc() for name, stat in sorted(out.items())}

    def traffic_table(self) -> dict[str, dict]:
        """Per-operation explicit-traffic stats (bytes moved)."""
        out: dict[str, _Stat] = {}
        for call in self.calls():
            if call.bytes_moved > 0.0:
                out.setdefault(call.op or call.name, _Stat()).add(
                    call.bytes_moved
                )
        return {name: stat.to_doc() for name, stat in sorted(out.items())}

    def kernel_attribution(self) -> list[dict]:
        """Join profiled kernels against their roofline model.

        One row per kernel name, sorted by total device time descending:
        achieved time, model time, the binding regime of the aggregate
        decomposition, and two fractions —

        * ``model_pct`` — model time / achieved time (how much of the
          measured time the full roofline model, latency term included,
          accounts for);
        * ``peak_pct`` — binding-component time / achieved time (the
          fraction of the roofline *ceiling* the kernel achieved; for a
          compute-bound kernel this equals achieved flop rate over the
          achieved-rate ceiling the model used).
        """
        acc: dict[str, dict[str, float]] = {}
        for s in self.kernels():
            row = acc.setdefault(
                s.name,
                {
                    "calls": 0.0,
                    "achieved_s": 0.0,
                    "model_s": 0.0,
                    "compute_s": 0.0,
                    "memory_s": 0.0,
                    "latency_s": 0.0,
                    "flops": 0.0,
                    "nbytes": 0.0,
                },
            )
            row["calls"] += 1
            row["achieved_s"] += s.achieved_s
            row["model_s"] += s.model_s
            row["compute_s"] += s.compute_s
            row["memory_s"] += s.memory_s
            row["latency_s"] += s.latency_s
            row["flops"] += s.flops
            row["nbytes"] += s.nbytes
        rows = []
        for name, row in acc.items():
            t = row["achieved_s"]
            bound = _classify(
                row["compute_s"], row["memory_s"], row["latency_s"]
            )
            binding_s = {
                "compute": row["compute_s"],
                "memory": row["memory_s"],
                "latency": row["latency_s"],
            }[bound]
            rows.append(
                {
                    "kernel": name,
                    "calls": int(row["calls"]),
                    "achieved_us": t * 1e6,
                    "model_us": row["model_s"] * 1e6,
                    "bound": bound,
                    "model_pct": 100.0 * row["model_s"] / t if t else 0.0,
                    "peak_pct": 100.0 * binding_s / t if t else 0.0,
                    "intensity": (
                        row["flops"] / row["nbytes"] if row["nbytes"] else None
                    ),
                    "achieved_rate": (
                        (row["flops"] / t)
                        if (bound == "compute" and t)
                        else (row["nbytes"] / t if t else 0.0)
                    ),
                }
            )
        rows.sort(key=lambda r: (-r["achieved_us"], r["kernel"]))
        return rows

    # ------------------------------------------------------------------
    # totals, document, digest
    # ------------------------------------------------------------------

    def host_total_us(self) -> float:
        return sum(c.host_us for c in self.calls())

    def device_total_us(self) -> float:
        return sum(c.device_us for c in self.calls())

    def traffic_total_bytes(self) -> float:
        return sum(c.bytes_moved for c in self.calls())

    def to_doc(self) -> dict:
        """The canonical aggregate profile document (JSON-able)."""
        return {
            "schema": PROFILE_SCHEMA,
            "api_calls": self.n_calls,
            "host_us": self.host_total_us(),
            "device_us": self.device_total_us(),
            "traffic_bytes": self.traffic_total_bytes(),
            "points": {
                layer: list(self.points(layer)) for layer in self.layers()
            },
            "host": self.host_table(),
            "device": self.device_table(),
            "traffic": self.traffic_table(),
            "kernels": self.kernel_attribution(),
            "clock_violations": len(self.clock_violations),
        }

    def digest(self) -> str:
        """Content digest of the aggregate profile (manifest-embeddable)."""
        return sha256_text(canonical_json(self.to_doc()))

    def summary(self) -> dict:
        """The small per-run aggregate embedded in payloads/manifests."""
        return {
            "digest": self.digest(),
            "api_calls": self.n_calls,
            "host_us": self.host_total_us(),
            "device_us": self.device_total_us(),
            "traffic_bytes": self.traffic_total_bytes(),
            "kernels": len(self.kernel_attribution()),
        }
