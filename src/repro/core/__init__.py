"""Benchmark framework: units, measurement protocol, results, registry.

This package is hardware-agnostic; the hardware models live in
:mod:`repro.hw` and the performance engine in :mod:`repro.sim`.
"""

from .fom import FOM_SPECS, Bound, FomSpec
from .registry import BenchmarkInfo, Registry, global_registry, register
from .result import (
    BenchmarkResult,
    DeviceScope,
    Measurement,
    ResultTable,
    SampleSet,
)
from .runner import RunPlan, Runner
from .stats import (
    ConfidenceInterval,
    bootstrap_ci,
    geometric_mean,
    harmonic_mean,
    speedup_summary,
)
from .units import (
    GB,
    GIGA,
    KIB,
    MB,
    MIB,
    PETA,
    TB,
    TERA,
    Quantity,
    bandwidth,
    flops,
    iops,
    parse_rate,
    seconds,
    si_format,
)

__all__ = [
    "FOM_SPECS",
    "Bound",
    "FomSpec",
    "BenchmarkInfo",
    "Registry",
    "global_registry",
    "register",
    "BenchmarkResult",
    "DeviceScope",
    "Measurement",
    "ResultTable",
    "SampleSet",
    "RunPlan",
    "Runner",
    "ConfidenceInterval",
    "bootstrap_ci",
    "geometric_mean",
    "harmonic_mean",
    "speedup_summary",
    "Quantity",
    "bandwidth",
    "flops",
    "iops",
    "parse_rate",
    "seconds",
    "si_format",
    "KIB",
    "MIB",
    "GB",
    "MB",
    "TB",
    "GIGA",
    "TERA",
    "PETA",
]
