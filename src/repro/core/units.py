"""Units and quantity formatting.

The paper reports rates in ``TFlop/s``, ``GB/s``, ``PFlop/s``, ``TIop/s``
and latencies in cycles.  This module provides a tiny, dependency-free
quantity layer so results can be formatted exactly the way the paper's
tables print them, and parsed back for comparisons in tests.

Conventions
-----------
* All internal computation is in **base SI units**: flop/s, byte/s, second,
  byte.  Prefixes are decimal (``1 GB/s == 1e9 B/s``) matching the paper's
  bandwidth/flops accounting; *sizes* of caches use binary prefixes
  (``KiB``/``MiB``) as the paper does for the L1/LLC capacities.
* Formatting mimics the paper: two or three significant digits, unit chosen
  so the mantissa lands in ``[1, 1000)``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

__all__ = [
    "SCALABLE_UNITS",
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "TB",
    "KILO",
    "MEGA",
    "GIGA",
    "TERA",
    "PETA",
    "Quantity",
    "flops",
    "iops",
    "bandwidth",
    "seconds",
    "bytes_qty",
    "parse_rate",
    "si_format",
]

# Binary size prefixes (used for cache capacities, register files).
KIB = 1024
MIB = 1024**2
GIB = 1024**3

# Decimal prefixes (used for bandwidths, flop rates, transfer sizes).
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15

KB = int(KILO)
MB = int(MEGA)
GB = int(GIGA)
TB = int(TERA)

_PREFIXES = [
    (PETA, "P"),
    (TERA, "T"),
    (GIGA, "G"),
    (MEGA, "M"),
    (KILO, "k"),
    (1.0, ""),
]

_RATE_RE = re.compile(
    r"^\s*([0-9]*\.?[0-9]+)\s*([kMGTP]?)\s*"
    r"(Flop/s|flop/s|FLOPS|Iop/s|Iops|B/s|op/s)\s*$"
)

_PREFIX_VALUE = {"": 1.0, "k": KILO, "M": MEGA, "G": GIGA, "T": TERA, "P": PETA}


def si_format(
    value: float, unit: str, digits: int = 3, prefix: str | None = None
) -> str:
    """Format *value* (in base units) with an SI prefix, paper style.

    Pass ``prefix`` to pin the prefix — the paper's Table III keeps GB/s
    even above 1000 ("1129 GB/s").

    >>> si_format(17e12, "Flop/s")
    '17 TFlop/s'
    >>> si_format(1129e9, "B/s", prefix="G")
    '1129 GB/s'
    """
    if value == 0:
        return f"0 {unit}"
    if value < 0:
        return "-" + si_format(-value, unit, digits, prefix)
    if prefix is not None:
        mantissa = value / _PREFIX_VALUE[prefix]
    else:
        for scale, prefix in _PREFIXES:
            if value >= scale:
                mantissa = value / scale
                break
        else:  # pragma: no cover - sub-unit rates never occur in practice
            mantissa, prefix = value, ""
    # Paper style: drop trailing zeros, keep up to `digits` significant digits.
    if mantissa >= 100:
        text = f"{mantissa:.0f}"
    elif mantissa >= 10:
        text = f"{mantissa:.0f}" if digits <= 2 else f"{mantissa:.3g}"
    else:
        text = f"{mantissa:.2g}"
    # Normalise "17.0" -> "17"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return f"{text} {prefix}{unit}"


def parse_rate(text: str) -> float:
    """Parse a paper-style rate string back to base units.

    >>> parse_rate("17 TFlop/s")
    1.7e+13
    """
    m = _RATE_RE.match(text)
    if m is None:
        raise ValueError(f"cannot parse rate: {text!r}")
    value = float(m.group(1))
    return value * _PREFIX_VALUE[m.group(2)]


#: Units that take SI prefixes when printed; FOM-style units ("Mcells/s",
#: "kparticles/s", "1/h", "GInteractions/s", "FOM") print their raw value,
#: exactly as the paper's Table VI does.
SCALABLE_UNITS = frozenset({"Flop/s", "Iop/s", "B/s", "B", "s", "op/s", "load/s"})


@dataclass(frozen=True, slots=True)
class Quantity:
    """A value with a unit, comparable and printable in paper style.

    ``Quantity`` is intentionally minimal: arithmetic between quantities of
    the same unit (addition, scaling, ratios) covers everything the
    benchmark harness needs.
    """

    value: float
    unit: str

    def __post_init__(self) -> None:
        if not math.isfinite(self.value):
            raise ValueError(f"non-finite quantity: {self.value}")

    def __str__(self) -> str:
        if self.unit not in SCALABLE_UNITS:
            return f"{self.value:.4g} {self.unit}"
        return si_format(self.value, self.unit)

    def __format__(self, spec: str) -> str:
        if spec:
            return format(str(self), spec)
        return str(self)

    def _check(self, other: "Quantity") -> None:
        if self.unit != other.unit:
            raise ValueError(f"unit mismatch: {self.unit} vs {other.unit}")

    def __add__(self, other: "Quantity") -> "Quantity":
        self._check(other)
        return Quantity(self.value + other.value, self.unit)

    def __sub__(self, other: "Quantity") -> "Quantity":
        self._check(other)
        return Quantity(self.value - other.value, self.unit)

    def __mul__(self, k: float) -> "Quantity":
        return Quantity(self.value * k, self.unit)

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, Quantity):
            self._check(other)
            return self.value / other.value
        return Quantity(self.value / other, self.unit)

    def __lt__(self, other: "Quantity") -> bool:
        self._check(other)
        return self.value < other.value

    def __le__(self, other: "Quantity") -> bool:
        self._check(other)
        return self.value <= other.value

    def ratio(self, other: "Quantity") -> float:
        """Dimensionless ratio ``self / other``."""
        self._check(other)
        return self.value / other.value


def flops(value: float) -> Quantity:
    """A floating-point rate in flop/s."""
    return Quantity(value, "Flop/s")


def iops(value: float) -> Quantity:
    """An integer-op rate in iop/s (the paper's ``TIop/s`` for I8GEMM)."""
    return Quantity(value, "Iop/s")


def bandwidth(value: float) -> Quantity:
    """A bandwidth in B/s."""
    return Quantity(value, "B/s")


def seconds(value: float) -> Quantity:
    """A duration in seconds."""
    return Quantity(value, "s")


def bytes_qty(value: float) -> Quantity:
    """A size in bytes."""
    return Quantity(value, "B")
