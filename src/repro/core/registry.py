"""Benchmark registry.

Microbenchmarks, mini-apps, and applications register themselves under a
stable name so the CLI and the table/figure regenerators can look them up.
Registration is explicit (module import side effects are limited to the
``repro.micro``/``repro.miniapps``/``repro.apps`` package ``__init__``s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..errors import UnknownBenchmarkError

__all__ = ["BenchmarkInfo", "Registry", "global_registry", "register"]


@dataclass(frozen=True, slots=True)
class BenchmarkInfo:
    """Metadata for a registered benchmark (mirrors the paper's Table I)."""

    name: str
    category: str  # "micro" | "miniapp" | "app"
    programming_model: str
    description: str
    factory: Callable[[], object]
    tags: tuple[str, ...] = field(default_factory=tuple)


class Registry:
    """Name -> :class:`BenchmarkInfo` mapping with category filtering."""

    def __init__(self) -> None:
        self._entries: dict[str, BenchmarkInfo] = {}

    def add(self, info: BenchmarkInfo) -> None:
        if info.name in self._entries:
            raise ValueError(f"benchmark already registered: {info.name}")
        self._entries[info.name] = info

    def get(self, name: str) -> BenchmarkInfo:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise UnknownBenchmarkError(
                f"unknown benchmark {name!r}; known: {known}"
            ) from None

    def create(self, name: str) -> object:
        """Instantiate the benchmark object behind *name*."""
        return self.get(name).factory()

    def names(self, category: str | None = None) -> list[str]:
        return sorted(
            n
            for n, info in self._entries.items()
            if category is None or info.category == category
        )

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[BenchmarkInfo]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


_GLOBAL = Registry()


def global_registry() -> Registry:
    """The process-wide registry used by the CLI and analysis layers."""
    return _GLOBAL


def register(
    name: str,
    category: str,
    programming_model: str,
    description: str,
    tags: tuple[str, ...] = (),
) -> Callable:
    """Class decorator registering *cls* in the global registry.

    The class itself is the factory (instantiated with no arguments).
    """

    def deco(cls):
        _GLOBAL.add(
            BenchmarkInfo(
                name=name,
                category=category,
                programming_model=programming_model,
                description=description,
                factory=cls,
                tags=tags,
            )
        )
        cls.benchmark_name = name
        return cls

    return deco
