"""Statistics helpers for benchmark results.

The paper reports best-of-N numbers; when aggregating *across* benchmarks
or quantifying run-to-run spread, the right tools are the geometric mean
(for ratios/speedups, following the SPEC convention), the harmonic mean
(for rates over fixed work), and bootstrap confidence intervals (for
small, non-normal repetition samples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .result import SampleSet

__all__ = [
    "geometric_mean",
    "harmonic_mean",
    "bootstrap_ci",
    "ConfidenceInterval",
    "speedup_summary",
]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean — the only correct mean for ratios/speedups."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty input")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean — the correct mean for rates over equal work."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty input")
    if np.any(arr <= 0):
        raise ValueError("harmonic mean requires positive values")
    return float(arr.size / np.sum(1.0 / arr))


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A bootstrap percentile confidence interval."""

    point: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0


def bootstrap_ci(
    values: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI of *statistic* over *values*."""
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two samples")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    resamples = rng.choice(arr, size=(n_resamples, arr.size), replace=True)
    stats = np.apply_along_axis(statistic, 1, resamples)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        point=float(statistic(arr)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
    )


def speedup_summary(ratios: Sequence[float]) -> dict[str, float]:
    """Summary of a set of cross-system speedup ratios (Figures 2-4 style):
    geometric mean plus the min/max envelope the paper's abstract quotes."""
    arr = [r for r in ratios if r is not None]
    if not arr:
        raise ValueError("no ratios")
    return {
        "geomean": geometric_mean(arr),
        "min": float(min(arr)),
        "max": float(max(arr)),
        "count": float(len(arr)),
    }


def sample_set_ci(samples: SampleSet, confidence: float = 0.95) -> ConfidenceInterval:
    """Bootstrap CI over a benchmark's repetition rates."""
    rates = [m.rate for m in samples]
    return bootstrap_ci(rates, confidence=confidence)
