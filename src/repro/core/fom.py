"""Figure-of-Merit definitions (paper Table V).

Each mini-app/application has a FOM with a specific formula and a
*performance bound* — the architectural resource the paper says limits it.
The bound drives the "expected relative performance" black bars of
Figures 2-4 (see :mod:`repro.analysis.expected`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Bound", "FomSpec", "FOM_SPECS"]


class Bound(enum.Enum):
    """Architectural resource bounding an application (Table V)."""

    FP32_FLOPS = "FP32 flop-rate bound"
    FP64_FLOPS = "FP64 flop-rate bound"
    MEMORY_BW = "Memory bandwidth bound"
    DGEMM = "DGEMM bound"
    MIXED_CPU = "Compute/Memory BW bound, CPU congestion bound"
    MEMORY_LATENCY = "Memory latency/bandwidth bound"
    CPU_BW_FP32 = "CPU memory BW bound, GPU FP32 flop-rate bound"


class Scaling(enum.Enum):
    """MPI scaling mode used by the paper when going to a full node."""

    NONE = "N/A"
    WEAK = "Weak"
    STRONG = "Strong"


@dataclass(frozen=True, slots=True)
class FomSpec:
    """One row of the paper's Table V."""

    name: str
    domain: str
    language: str
    programming_model: str
    bound: Bound
    scaling: Scaling
    formula: str
    unit: str

    def describe(self) -> str:
        return (
            f"{self.name} ({self.domain}): {self.bound.value}; "
            f"FOM = {self.formula} [{self.unit}], scaling: {self.scaling.value}"
        )


#: Table V, one entry per mini-app / application.
FOM_SPECS: dict[str, FomSpec] = {
    "minibude": FomSpec(
        name="miniBUDE",
        domain="BioChemistry",
        language="C++",
        programming_model="SYCL, HIP, CUDA",
        bound=Bound.FP32_FLOPS,
        scaling=Scaling.NONE,
        formula="Billion Interactions / time(s)",
        unit="GInteractions/s",
    ),
    "cloverleaf": FomSpec(
        name="CloverLeaf",
        domain="Computational Fluid Dynamics",
        language="C++",
        programming_model="SYCL, HIP, CUDA",
        bound=Bound.MEMORY_BW,
        scaling=Scaling.WEAK,
        formula="N_cells / time(s)",
        unit="Mcells/s",
    ),
    "miniqmc": FomSpec(
        name="miniQMC",
        domain="Material Science",
        language="C++",
        programming_model="OpenMP",
        bound=Bound.MIXED_CPU,
        scaling=Scaling.WEAK,
        formula="N_w * N_e^3 * 1e-11 / diffusion time(s)",
        unit="FOM",
    ),
    "rimp2": FomSpec(
        name="GAMESS RI-MP2 mini-app",
        domain="Quantum Chemistry",
        language="Fortran",
        programming_model="OpenMP",
        bound=Bound.DGEMM,
        scaling=Scaling.STRONG,
        formula="1 / time(h)",
        unit="1/h",
    ),
    "openmc": FomSpec(
        name="OpenMC",
        domain="Particle Transport",
        language="C++",
        programming_model="OpenMP",
        bound=Bound.MEMORY_LATENCY,
        scaling=Scaling.WEAK,
        formula="Thousand particles / time(s)",
        unit="kparticles/s",
    ),
    "hacc": FomSpec(
        name="HACC",
        domain="Cosmology",
        language="C++",
        programming_model="SYCL, HIP, CUDA",
        bound=Bound.CPU_BW_FP32,
        scaling=Scaling.WEAK,
        formula="N_p * N_steps / time(s)",
        unit="FOM",
    ),
}
