"""Result containers for benchmark runs.

A benchmark produces a :class:`Measurement` per repetition; the paper's
protocol ("each microbenchmark is executed multiple times and the best
performance number is presented", Section IV-A) is captured by
:class:`SampleSet.best`.  :class:`BenchmarkResult` couples the sample set
with the configuration it was measured under (system, device scope, dtype,
...), and :class:`ResultTable` collects results into paper-style tables.
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .units import Quantity

__all__ = [
    "Measurement",
    "SampleSet",
    "BenchmarkResult",
    "ResultTable",
    "DeviceScope",
    "CellStatus",
    "Provenance",
]


class CellStatus(enum.IntEnum):
    """Health of one table cell, ordered by severity.

    ``OK`` is a clean measurement; ``DEGRADED`` means faults were absorbed
    (retries, quarantined repetitions, rerouted traffic) but a number was
    still produced; ``FAILED`` means no usable measurement exists.  The
    worst status across a run decides the CLI exit code (0/1/2).
    """

    OK = 0
    DEGRADED = 1
    FAILED = 2


@dataclass(frozen=True, slots=True)
class Provenance:
    """How a result was obtained under fault injection.

    Attached to a :class:`BenchmarkResult` by the resilient runner so
    tables can mark cells and footnote the faults that touched them.
    """

    status: CellStatus = CellStatus.OK
    faults: tuple[str, ...] = ()
    retries: int = 0
    quarantined: int = 0
    timeouts: int = 0
    detail: str = ""

    def summary(self) -> str:
        parts = list(self.faults)
        if self.retries:
            parts.append(f"{self.retries} retried rep(s)")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined sample(s)")
        if self.timeouts:
            parts.append(f"{self.timeouts} timed-out rep(s)")
        if self.detail:
            parts.append(self.detail)
        return "; ".join(parts) if parts else "clean"


@dataclass(frozen=True, slots=True)
class DeviceScope:
    """How much of a node a measurement covers.

    The paper reports three scopes per system: ``One Stack``, ``One PVC``
    (or one GPU), and the full node.  ``n_stacks`` counts logical devices
    (PVC stacks / MI250 GCDs / whole H100s depending on the system's
    explicit-scaling granularity).
    """

    name: str
    n_stacks: int

    def __post_init__(self) -> None:
        if self.n_stacks < 1:
            raise ValueError("scope must cover at least one stack")

    def __str__(self) -> str:
        return self.name


#: Common scopes used throughout the harness.
ONE_STACK = DeviceScope("One Stack", 1)


@dataclass(frozen=True, slots=True)
class Measurement:
    """One repetition of a benchmark: elapsed (simulated) time + work done."""

    elapsed_s: float
    work: float = 1.0
    unit: str = "op/s"

    def __post_init__(self) -> None:
        if self.elapsed_s <= 0:
            raise ValueError(f"elapsed time must be positive: {self.elapsed_s}")
        if self.work < 0:
            raise ValueError(f"work must be non-negative: {self.work}")

    @property
    def rate(self) -> float:
        """Work per second."""
        return self.work / self.elapsed_s

    def as_quantity(self) -> Quantity:
        return Quantity(self.rate, self.unit)


class SampleSet:
    """An ordered collection of repetitions of the same benchmark."""

    def __init__(self, samples: Iterable[Measurement] = ()) -> None:
        self._samples: list[Measurement] = list(samples)

    def add(self, sample: Measurement) -> None:
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self._samples)

    def _require_nonempty(self) -> None:
        if not self._samples:
            raise ValueError("no samples recorded")

    @property
    def best(self) -> Measurement:
        """Highest-rate repetition (the paper's reporting protocol)."""
        self._require_nonempty()
        return max(self._samples, key=lambda m: m.rate)

    @property
    def worst(self) -> Measurement:
        self._require_nonempty()
        return min(self._samples, key=lambda m: m.rate)

    @property
    def median_rate(self) -> float:
        self._require_nonempty()
        return statistics.median(m.rate for m in self._samples)

    @property
    def spread(self) -> float:
        """Relative spread ``(best - worst) / best`` across repetitions."""
        self._require_nonempty()
        best = self.best.rate
        return (best - self.worst.rate) / best if best else 0.0


@dataclass(slots=True)
class BenchmarkResult:
    """A benchmark outcome under a specific configuration.

    Attributes
    ----------
    benchmark:
        Registered benchmark name, e.g. ``"peak_flops"``.
    system:
        System name, e.g. ``"aurora"``.
    scope:
        Device scope the benchmark ran at.
    samples:
        All repetitions.
    params:
        Benchmark-specific configuration (dtype, message size, ...).
    """

    benchmark: str
    system: str
    scope: DeviceScope
    samples: SampleSet
    params: Mapping[str, object] = field(default_factory=dict)
    #: Fault-injection provenance (None for ordinary clean runs).
    provenance: "Provenance | None" = None

    @property
    def best(self) -> Measurement:
        return self.samples.best

    @property
    def quantity(self) -> Quantity:
        """Best-repetition rate as a printable quantity."""
        return self.best.as_quantity()

    @property
    def value(self) -> float:
        """Best-repetition rate in base units."""
        return self.best.rate

    def describe(self) -> str:
        return (
            f"{self.benchmark}[{self.system}/{self.scope}] = {self.quantity}"
        )


class ResultTable:
    """A keyed collection of results, rendering paper-style tables.

    Keys are ``(row_label, column_label)`` pairs; cells hold either a
    :class:`BenchmarkResult`, a raw :class:`Quantity`, or ``None`` for the
    paper's '-' (not measured) cells.
    """

    def __init__(self, title: str) -> None:
        self.title = title
        self._rows: list[str] = []
        self._cols: list[str] = []
        self._cells: dict[tuple[str, str], Quantity | None] = {}
        self._status: dict[tuple[str, str], CellStatus] = {}
        self._notes: dict[tuple[str, str], str] = {}

    def set(
        self,
        row: str,
        col: str,
        value: BenchmarkResult | Quantity | None,
        *,
        status: CellStatus | None = None,
        note: str | None = None,
    ) -> None:
        if row not in self._rows:
            self._rows.append(row)
        if col not in self._cols:
            self._cols.append(col)
        if isinstance(value, BenchmarkResult):
            prov = value.provenance
            if prov is not None:
                if status is None and prov.status is not CellStatus.OK:
                    status = prov.status
                if note is None and prov.status is not CellStatus.OK:
                    note = prov.summary()
            value = value.quantity
        self._cells[(row, col)] = value
        if status is not None and status is not CellStatus.OK:
            self._status[(row, col)] = status
            if note:
                self._notes[(row, col)] = note

    def set_failed(self, row: str, col: str, note: str) -> None:
        """Record a cell whose measurement failed outright."""
        self.set(row, col, None, status=CellStatus.FAILED, note=note)

    def get(self, row: str, col: str) -> Quantity | None:
        return self._cells[(row, col)]

    def status(self, row: str, col: str) -> CellStatus:
        return self._status.get((row, col), CellStatus.OK)

    def note(self, row: str, col: str) -> str | None:
        return self._notes.get((row, col))

    def worst_status(self) -> CellStatus:
        """Worst cell status in the table (drives the CLI exit code)."""
        if not self._status:
            return CellStatus.OK
        return max(self._status.values())

    @property
    def rows(self) -> list[str]:
        return list(self._rows)

    @property
    def columns(self) -> list[str]:
        return list(self._cols)

    def render(self) -> str:
        """Render as a monospace table resembling the paper's layout.

        Cells touched by fault injection carry a marker (``*`` degraded,
        ``FAILED`` for lost cells) and a deterministic footnote listing the
        fault provenance.
        """
        header = [self.title] + self._cols
        body: list[list[str]] = []
        footnotes: list[str] = []
        seen_notes: dict[tuple[str, str], int] = {}
        for row in self._rows:
            cells = [row]
            for col in self._cols:
                q = self._cells.get((row, col))
                status = self._status.get((row, col), CellStatus.OK)
                if status is CellStatus.FAILED:
                    text = "FAILED"
                elif q is None:
                    text = "-"
                else:
                    text = str(q)
                if status is not CellStatus.OK:
                    note = self._notes.get((row, col))
                    if note:
                        idx = seen_notes.setdefault((row, col), len(seen_notes) + 1)
                        footnotes.append(
                            f"[{idx}] {row} / {col} "
                            f"({status.name}): {note}"
                        )
                        text += f" *[{idx}]"
                    else:
                        text += " *"
                cells.append(text)
            body.append(cells)
        widths = [
            max(len(line[i]) for line in [header] + body)
            for i in range(len(header))
        ]
        def fmt(line: list[str]) -> str:
            return "  ".join(cell.ljust(w) for cell, w in zip(line, widths))

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [fmt(header), rule]
        out.extend(fmt(line) for line in body)
        if footnotes:
            out.append("")
            out.append("fault provenance:")
            out.extend(f"  {line}" for line in footnotes)
        return "\n".join(out)
