"""The repeat-and-take-best measurement protocol.

Section IV-A of the paper: *"Each microbenchmark is executed multiple times
and the best performance number is presented.  This avoids run-to-run
variations and any other intermittent artifacts."*

:class:`Runner` drives a callable that returns one :class:`Measurement`
per invocation, applying deterministic run-to-run noise (injected by the
performance engine's noise model) and collecting a :class:`SampleSet`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

from ..errors import BuildError, MeasurementError, NotMeasuredError, ReproError
from .result import BenchmarkResult, DeviceScope, Measurement, SampleSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry.session import Telemetry

__all__ = ["Runner", "RunPlan"]


@dataclass(frozen=True, slots=True)
class RunPlan:
    """How many repetitions to run, with an optional warm-up discard.

    The paper's scripts run each benchmark several times; warm-up
    repetitions exercise first-touch/page-fault effects (modelled by the
    engine's noise layer) and are discarded.
    """

    repetitions: int = 5
    warmup: int = 1

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("need at least one repetition")
        if self.warmup < 0:
            raise ValueError("warmup cannot be negative")


class Runner:
    """Executes a measurement callable according to a :class:`RunPlan`."""

    def __init__(
        self,
        plan: RunPlan | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.plan = plan or RunPlan()
        self.telemetry = telemetry

    def _run_span(self, benchmark: str, system: str, scope: DeviceScope):
        """A ``<benchmark>.run`` span on the run lane (no-op untelemetered)."""
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.span(
            f"{benchmark}.run", system=system, scope=str(scope)
        )

    def _record_rep(
        self, benchmark: str, rep: int, sample: Measurement, warmup: bool
    ) -> None:
        """One complete event per repetition on the run lane."""
        tel = self.telemetry
        if tel is None:
            return
        tel.tracer.complete(
            f"{benchmark} rep {rep}",
            tel.run_lane(),
            duration_us=sample.elapsed_s * 1e6,
            category="rep",
            warmup=warmup,
        )
        tel.metrics.observe(
            "rep.time_us",
            sample.elapsed_s * 1e6,
            benchmark=benchmark,
            **tel.unit_labels(),
        )

    def run(
        self,
        benchmark: str,
        system: str,
        scope: DeviceScope,
        measure: Callable[[int], Measurement],
        params: Mapping[str, object] | None = None,
    ) -> BenchmarkResult:
        """Run *measure* ``warmup + repetitions`` times; keep the last
        ``repetitions`` samples.

        *measure* receives the repetition index (including warm-ups) so the
        engine's noise model can vary deterministically per repetition.
        """
        samples = SampleSet()
        total = self.plan.warmup + self.plan.repetitions
        with self._run_span(benchmark, system, scope):
            for rep in range(total):
                try:
                    sample = measure(rep)
                except (NotMeasuredError, BuildError, MeasurementError):
                    # Already carries context (or is the '-' sentinel): pass
                    # through so table code can keep its existing handling.
                    raise
                except ReproError as exc:
                    raise MeasurementError(
                        f"repetition {rep} of {benchmark} on {system} "
                        f"failed: {exc}",
                        benchmark=benchmark,
                        system=system,
                        repetition=rep,
                        partial=samples,
                    ) from exc
                self._record_rep(
                    benchmark, rep, sample, rep < self.plan.warmup
                )
                if rep >= self.plan.warmup:
                    samples.add(sample)
        return BenchmarkResult(
            benchmark=benchmark,
            system=system,
            scope=scope,
            samples=samples,
            params=dict(params or {}),
        )
