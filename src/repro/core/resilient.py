"""Resilient benchmark execution: retry, timeout, quarantine, degradation.

:class:`ResilientRunner` wraps the repeat-and-take-best protocol of
:class:`~repro.core.runner.Runner` with the policies production benchmark
harnesses need on flaky hardware:

* **bounded retry with exponential backoff** for transient failures
  (kernel launch failures, USM allocation failures, MPI faults, lost
  devices whose work can land on a survivor);
* **per-repetition timeout** and a **cumulative deadline** on simulated
  time, so a throttled or hung repetition cannot stall the suite;
* **outlier quarantine** — repetitions far slower than the fastest are
  excluded from the sample set (a DVFS excursion must not poison the
  median) but recorded in provenance;
* **per-benchmark isolation** — a benchmark that still cannot produce a
  sample raises :class:`~repro.errors.MeasurementError`; table drivers
  catch it and mark the cell FAILED instead of aborting the suite.

All timing is *simulated* time, so the runner is deterministic: the same
fault plan and seed reproduce the same retries, quarantines and statuses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

from ..errors import (
    AllocationError,
    BenchmarkTimeoutError,
    DeviceLostError,
    MeasurementError,
    MPIError,
    ReproError,
    TransientKernelError,
)
from .result import (
    BenchmarkResult,
    CellStatus,
    DeviceScope,
    Measurement,
    Provenance,
    SampleSet,
)
from .runner import RunPlan, Runner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injectors import FaultInjector
    from ..telemetry.session import Telemetry

__all__ = ["ResiliencePolicy", "ResilientRunner"]

#: Errors worth retrying: the fault either clears on its own (transient
#: kernel/allocation/MPI faults advance their stream counter on retry) or
#: the retried repetition can select surviving hardware (device loss).
_RETRYABLE = (TransientKernelError, AllocationError, MPIError, DeviceLostError)


@dataclass(frozen=True, slots=True)
class ResiliencePolicy:
    """Knobs for the resilient execution protocol.

    ``rep_timeout_s``/``deadline_s`` bound *simulated* elapsed time; the
    defaults are generous because microbenchmark repetitions complete in
    simulated milliseconds-to-seconds.
    """

    max_retries: int = 2
    backoff_s: float = 1e-3
    rep_timeout_s: float | None = None
    deadline_s: float | None = None
    quarantine_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff_s < 0:
            raise ValueError("backoff_s cannot be negative")
        if self.quarantine_ratio <= 1.0:
            raise ValueError("quarantine_ratio must exceed 1.0")

    def backoff_for(self, attempt: int) -> float:
        """Simulated wait before retry *attempt* (1-based), doubling."""
        return self.backoff_s * (2.0 ** (attempt - 1))


class ResilientRunner(Runner):
    """A :class:`Runner` that survives injected (and real) faults."""

    def __init__(
        self,
        plan: RunPlan | None = None,
        policy: ResiliencePolicy | None = None,
        injector: "FaultInjector | None" = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        super().__init__(plan, telemetry)
        self.policy = policy or ResiliencePolicy()
        self.injector = injector

    # ------------------------------------------------------------------

    def run(
        self,
        benchmark: str,
        system: str,
        scope: DeviceScope,
        measure: Callable[[int], Measurement],
        params: Mapping[str, object] | None = None,
    ) -> BenchmarkResult:
        policy = self.policy
        incidents: dict[str, None] = {}
        retries = 0
        timeouts = 0
        elapsed_total = 0.0
        kept: list[tuple[int, Measurement]] = []
        detail_parts: list[str] = []

        def record_incidents() -> None:
            if self.injector is not None:
                for msg in self.injector.drain():
                    incidents.setdefault(msg, None)

        tel = self.telemetry
        total = self.plan.warmup + self.plan.repetitions
        last_error: ReproError | None = None
        with self._run_span(benchmark, system, scope):
            for rep in range(total):
                if self.injector is not None:
                    self.injector.tick()
                if (
                    policy.deadline_s is not None
                    and elapsed_total >= policy.deadline_s
                ):
                    detail_parts.append(
                        f"deadline of {policy.deadline_s:g}s reached after "
                        f"rep {rep - 1}; remaining repetitions skipped"
                    )
                    break
                sample: Measurement | None = None
                for attempt in range(policy.max_retries + 1):
                    try:
                        sample = measure(rep)
                        break
                    except _RETRYABLE as exc:
                        last_error = exc
                        record_incidents()
                        if attempt >= policy.max_retries:
                            incidents.setdefault(
                                f"rep {rep} gave up after "
                                f"{policy.max_retries} retries: {exc}",
                                None,
                            )
                            break
                        retries += 1
                        backoff = policy.backoff_for(attempt + 1)
                        elapsed_total += backoff
                        if tel is not None:
                            tel.metrics.inc(
                                "retry.count",
                                benchmark=benchmark,
                                **tel.unit_labels(),
                            )
                            tel.tracer.complete(
                                f"retry backoff (rep {rep})",
                                tel.run_lane(),
                                duration_us=backoff * 1e6,
                                category="retry",
                                attempt=attempt + 1,
                                error=type(exc).__name__,
                            )
                record_incidents()
                if sample is None:
                    continue
                elapsed_total += sample.elapsed_s
                self._record_rep(
                    benchmark, rep, sample, rep < self.plan.warmup
                )
                if (
                    policy.rep_timeout_s is not None
                    and sample.elapsed_s > policy.rep_timeout_s
                ):
                    timeouts += 1
                    if tel is not None:
                        tel.metrics.inc(
                            "timeout.count",
                            benchmark=benchmark,
                            **tel.unit_labels(),
                        )
                    incidents.setdefault(
                        f"rep {rep} exceeded the {policy.rep_timeout_s:g}s "
                        f"repetition timeout ({sample.elapsed_s:.3g}s)",
                        None,
                    )
                    continue
                if rep >= self.plan.warmup:
                    kept.append((rep, sample))

        quarantined = 0
        if kept and policy.quarantine_ratio:
            fastest = min(m.elapsed_s for _, m in kept)
            threshold = fastest * policy.quarantine_ratio
            survivors = [(rep, m) for rep, m in kept if m.elapsed_s <= threshold]
            quarantined = len(kept) - len(survivors)
            if quarantined:
                if tel is not None:
                    tel.metrics.inc(
                        "quarantine.count",
                        quarantined,
                        benchmark=benchmark,
                        **tel.unit_labels(),
                    )
                incidents.setdefault(
                    f"{quarantined} outlier repetition(s) quarantined "
                    f"(> {policy.quarantine_ratio:g}x the fastest)",
                    None,
                )
                kept = survivors

        if not kept:
            if timeouts and last_error is None:
                raise BenchmarkTimeoutError(
                    f"{benchmark} on {system}: every repetition exceeded "
                    f"the {policy.rep_timeout_s:g}s repetition timeout"
                )
            raise MeasurementError(
                f"{benchmark} on {system} produced no usable samples"
                + (f" (last error: {last_error})" if last_error else ""),
                benchmark=benchmark,
                system=system,
                repetition=total - 1,
                partial=SampleSet(),
            )

        samples = SampleSet(m for _, m in kept)
        degraded = bool(incidents) or retries or quarantined or timeouts
        provenance = Provenance(
            status=CellStatus.DEGRADED if degraded else CellStatus.OK,
            faults=tuple(incidents),
            retries=retries,
            quarantined=quarantined,
            timeouts=timeouts,
            detail="; ".join(detail_parts),
        )
        return BenchmarkResult(
            benchmark=benchmark,
            system=system,
            scope=scope,
            samples=samples,
            params=dict(params or {}),
            provenance=provenance,
        )
