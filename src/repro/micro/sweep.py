"""Parameter sweeps over the microbenchmarks.

Beyond the single-point numbers of Table II, benchmark suites like the
paper's (and clpeak, which its FMA benchmark follows) sweep parameters to
expose the underlying mechanisms.  Three sweeps:

* :func:`message_size_sweep` — P2P / PCIe bandwidth vs message size:
  the classic latency-to-bandwidth ramp ``B(s) = s / (latency + s/BW)``
  with its half-bandwidth point at ``s = latency * BW``;
* :func:`gemm_size_sweep` — GEMM throughput vs N, showing the ramp to the
  compute roof (small N are bandwidth/launch-bound);
* :func:`fma_chain_sweep` — flops vs chain length (clpeak-style), showing
  the latency-hiding ramp of the FMA pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dtypes import Precision
from ..hw.ids import StackRef
from ..sim.engine import PerfEngine
from ..sim.kernel import gemm_kernel

__all__ = [
    "SweepPoint",
    "message_size_sweep",
    "gemm_size_sweep",
    "fma_chain_sweep",
    "half_bandwidth_point",
]


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One point of a parameter sweep."""

    x: float
    value: float


def message_size_sweep(
    engine: PerfEngine,
    src: StackRef,
    dst: StackRef,
    sizes: np.ndarray | None = None,
) -> list[SweepPoint]:
    """Achieved P2P bandwidth vs message size.

    Uses the route's fixed latency plus its bottleneck bandwidth — the
    standard alpha-beta model the MPI benchmark community plots.
    """
    if sizes is None:
        sizes = np.logspace(2, np.log10(500e6), 24)
    out = []
    for s in sizes:
        t = engine.transfers.p2p_transfer_time(src, dst, float(s))
        out.append(SweepPoint(float(s), float(s) / t))
    return out


def half_bandwidth_point(points: list[SweepPoint]) -> float:
    """The message size reaching half the asymptotic bandwidth (n_1/2)."""
    if len(points) < 2:
        raise ValueError("need at least two sweep points")
    peak = points[-1].value
    for p in points:
        if p.value >= 0.5 * peak:
            return p.x
    return points[-1].x


def gemm_size_sweep(
    engine: PerfEngine,
    precision: Precision = Precision.FP64,
    sizes: tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096, 8192, 20480),
) -> list[SweepPoint]:
    """GEMM throughput vs matrix size.

    Small matrices are DRAM-bound (O(N^2) traffic cannot amortise);
    the paper's N = 20480 sits far up the compute roof.
    """
    out = []
    for n in sizes:
        spec = gemm_kernel(precision, n)
        t = engine.kernel_time_s(spec)
        out.append(SweepPoint(float(n), spec.flops / t))
    return out


def fma_chain_sweep(
    engine: PerfEngine,
    precision: Precision = Precision.FP64,
    chain_lengths: tuple[int, ...] = (1, 2, 4, 8, 16, 64, 256, 2048),
    pipeline_depth: float = 8.0,
) -> list[SweepPoint]:
    """Achieved flops vs FMA chain length (clpeak's ramp).

    Short dependent chains cannot hide the FMA pipeline latency; the
    achieved rate ramps as ``L / (L + depth - 1)`` toward the peak, which
    is why the paper's kernel uses a 16x128-long chain.
    """
    peak = engine.fma_rate(precision, 1)
    out = []
    for length in chain_lengths:
        efficiency = length / (length + pipeline_depth - 1.0)
        out.append(SweepPoint(float(length), peak * efficiency))
    return out
