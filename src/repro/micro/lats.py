"""Memory access latency: the ``lats`` pointer chase (Section IV-A.7).

"The lats benchmark measures the memory access latency by chasing
pointers on arrays of various lengths to determine the different levels
of the memory hierarchy.  It was originally designed to chase the
pointers in a ring ... We modified this benchmark to perform the same
operation simultaneously on one sub-group or warp (Coalesced Access)
with 16 work-items."

Two legs:

* the **functional chase** really builds the pointer array (a single
  Hamiltonian cycle, so the chase provably touches every cache line) and
  follows it, in ring or coalesced-16 mode;
* the **latency curve** queries the device's memory-hierarchy model,
  producing the Figure 1 staircase (L1 -> L2 -> HBM in cycles).
"""

from __future__ import annotations

import numpy as np

from ..core.registry import register
from ..core.result import BenchmarkResult, DeviceScope, Measurement, SampleSet
from ..core.runner import RunPlan, Runner
from ..core.units import KIB
from ..sim.engine import PerfEngine
from .common import MicroBenchmark

__all__ = [
    "build_chain",
    "chase",
    "chase_coalesced",
    "Lats",
    "latency_curve",
    "default_sizes",
]

#: The coalesced variant uses one sub-group of 16 work-items.
SUBGROUP_SIZE = 16

#: One pointer per cache line, like the original benchmark.
STRIDE_BYTES = 64


def build_chain(n: int, seed: int = 0, ring: bool = False) -> np.ndarray:
    """A pointer array forming a single cycle over all *n* slots.

    ``ring=True`` gives the original sequential ring (``i -> i+1``);
    otherwise a random single cycle (Sattolo's algorithm) defeats any
    prefetcher, as latency benchmarks require.
    """
    if n < 2:
        raise ValueError("need at least two slots")
    if ring:
        chain = np.roll(np.arange(n, dtype=np.int64), -1)
        return chain
    rng = np.random.default_rng(seed)
    perm = np.arange(n, dtype=np.int64)
    # Sattolo's algorithm: a uniformly random cyclic permutation.
    for i in range(n - 1, 0, -1):
        j = rng.integers(0, i)
        perm[i], perm[j] = perm[j], perm[i]
    chain = np.empty(n, dtype=np.int64)
    # perm, read as a cycle (perm[0] -> perm[1] -> ... -> perm[0]),
    # becomes the successor array.
    chain[perm[:-1]] = perm[1:]
    chain[perm[-1]] = perm[0]
    return chain


def chase(chain: np.ndarray, steps: int, start: int = 0) -> int:
    """Follow *steps* dependent loads; returns the final index."""
    idx = int(start)
    for _ in range(steps):
        idx = int(chain[idx])
    return idx


def chase_coalesced(
    chain: np.ndarray, steps: int, width: int = SUBGROUP_SIZE
) -> np.ndarray:
    """The coalesced variant: *width* work-items chase in lockstep.

    Work-item *w* starts at slot *w*; each step is one gathered load for
    the whole sub-group (what the modified benchmark measures on GPUs).
    """
    if width < 1 or width > len(chain):
        raise ValueError("bad sub-group width")
    idx = np.arange(width, dtype=np.int64)
    for _ in range(steps):
        idx = chain[idx]
    return idx


def default_sizes(max_bytes: int = 8 << 30) -> np.ndarray:
    """Working-set sizes: powers of two from 16 KiB up, plus midpoints."""
    sizes = []
    s = 16 * KIB
    while s <= max_bytes:
        sizes.append(s)
        sizes.append(s + s // 2)
        s *= 2
    return np.array(sizes[:-1], dtype=np.int64)


def latency_curve(
    engine: PerfEngine, sizes: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """(sizes, latency_cycles) — one Figure 1 series."""
    if sizes is None:
        sizes = default_sizes(engine.device.hbm_capacity_bytes // 2)
    lats = np.array([engine.latency_cycles(int(s)) for s in sizes])
    return sizes, lats


@register(
    name="lats",
    category="micro",
    programming_model="SYCL, CUDA, HIP",
    description=(
        "Measure the access latency of different levels of the memory "
        "hierarchy"
    ),
)
class Lats(MicroBenchmark):
    """Figure 1: latency (cycles) at one working-set size."""

    def __init__(
        self,
        working_set_bytes: int = 64 * KIB,
        coalesced: bool = True,
        functional_slots: int = 4096,
        chase_steps: int = 2048,
    ) -> None:
        self.working_set_bytes = working_set_bytes
        self.coalesced = coalesced
        self.functional_slots = functional_slots
        self.chase_steps = chase_steps

    def params(self) -> dict:
        return {
            "working_set_bytes": self.working_set_bytes,
            "coalesced": self.coalesced,
        }

    def _measure_once(
        self, engine: PerfEngine, n_stacks: int, rep: int
    ) -> Measurement:
        # Functional chase on a small chain (proves the harness logic).
        chain = build_chain(self.functional_slots, seed=rep)
        if self.coalesced:
            idx = chase_coalesced(chain, self.functional_slots)
            # After exactly n steps around a single n-cycle, every lane
            # returns to its start.
            if not np.array_equal(idx, np.arange(SUBGROUP_SIZE)):
                raise AssertionError("coalesced chase left its cycle")
        else:
            if chase(chain, self.functional_slots) != 0:
                raise AssertionError("ring chase left its cycle")

        # Timed leg: dependent loads at the model's level latency.
        lat_s = engine.latency_seconds(self.working_set_bytes)
        elapsed = engine.noise.apply(
            self.chase_steps * lat_s,
            f"{engine.system.name}:lats:{self.working_set_bytes}",
            rep,
        )
        # Work = chase steps; rate unit is loads/s, but the quantity of
        # interest is cycles/load, exposed via `latency_cycles`.
        return Measurement(
            elapsed_s=elapsed, work=float(self.chase_steps), unit="load/s"
        )

    def latency_cycles(self, engine: PerfEngine) -> float:
        """The Figure 1 y-value for this working-set size."""
        return engine.latency_cycles(self.working_set_bytes)
