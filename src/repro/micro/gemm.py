"""General Matrix Multiplication (Section IV-A.5).

"GEMM is used to measure floating-point (FP64, FP32, FP8, BF16, and
TF32) and small integer (I8) operation throughput.  We use a square
N x N matrix of size N = 20480 ...  The GEMMs are implemented using the
oneMKL library and the SYCL programming language.  A total of 2 * N^3
floating point operations is expected to be performed."

The functional leg is a real cache-blocked GEMM (the textbook tiling a
oneMKL-class library performs), validated against ``A @ B``; the timed
leg runs the N=20480 kernel through the engine's GEMM model, reproducing
the Table II GEMM rows including the DGEMM-vs-SGEMM efficiency gap the
paper highlights.
"""

from __future__ import annotations

import numpy as np

from ..core.registry import register
from ..core.result import Measurement
from ..dtypes import Precision
from ..sim.engine import PerfEngine
from ..sim.kernel import GEMM_N, gemm_kernel
from .common import MicroBenchmark

__all__ = [
    "Gemm",
    "blocked_gemm",
    "quantize_bf16",
    "quantize_tf32",
    "GEMM_PRECISIONS",
]

#: The Table II GEMM rows, in paper order.
GEMM_PRECISIONS: tuple[Precision, ...] = (
    Precision.FP64,
    Precision.FP32,
    Precision.FP16,
    Precision.BF16,
    Precision.TF32,
    Precision.I8,
)


def quantize_bf16(x: np.ndarray) -> np.ndarray:
    """Round float32 values to the bfloat16 grid (7-bit mantissa).

    bfloat16 is float32 with the bottom 16 mantissa bits dropped; we
    round-to-nearest-even on those bits, which is exactly what the matrix
    engines do when ingesting BF16 operands.
    """
    bits = np.asarray(x, dtype=np.float32).view(np.uint32)
    # Round half to even on the truncated 16 bits.
    rounding = ((bits >> 16) & 1) + 0x7FFF
    return ((bits + rounding) & np.uint32(0xFFFF0000)).view(np.float32)


def quantize_tf32(x: np.ndarray) -> np.ndarray:
    """Round float32 values to the TF32 grid (10-bit mantissa).

    TF32 keeps float32's exponent but only 10 explicit mantissa bits; the
    bottom 13 bits are rounded away.
    """
    bits = np.asarray(x, dtype=np.float32).view(np.uint32)
    rounding = ((bits >> 13) & 1) + 0x0FFF
    return ((bits + rounding) & np.uint32(0xFFFFE000)).view(np.float32)


def blocked_gemm(
    a: np.ndarray, b: np.ndarray, block: int = 64, out: np.ndarray | None = None
) -> np.ndarray:
    """Cache-blocked ``C = A @ B``.

    Tiles the K dimension and accumulates per (i, j) block — the loop
    structure a GPU GEMM uses with shared-memory tiles, expressed with
    NumPy per-tile products.  Accumulation happens in a wider type for
    integer inputs (int8 -> int32, as the hardware's I8 GEMM does).
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"bad GEMM shapes {a.shape} x {b.shape}")
    if block < 1:
        raise ValueError("block must be positive")
    m, k = a.shape
    _, n = b.shape
    acc_dtype = np.int32 if a.dtype == np.int8 else np.result_type(a, b)
    if out is None:
        out = np.zeros((m, n), dtype=acc_dtype)
    else:
        if out.shape != (m, n):
            raise ValueError("bad output shape")
        out[:] = 0
    a_acc = a.astype(acc_dtype, copy=False)
    b_acc = b.astype(acc_dtype, copy=False)
    for i0 in range(0, m, block):
        i1 = min(i0 + block, m)
        for j0 in range(0, n, block):
            j1 = min(j0 + block, n)
            tile = out[i0:i1, j0:j1]
            for k0 in range(0, k, block):
                k1 = min(k0 + block, k)
                tile += a_acc[i0:i1, k0:k1] @ b_acc[k0:k1, j0:j1]
    return out


@register(
    name="gemm",
    category="micro",
    programming_model="SYCL",
    description="DGEMM, SGEMM, HGEMM, BF16, TF32 and I8 GEMM throughput",
)
class Gemm(MicroBenchmark):
    """One Table II GEMM row (per precision)."""

    def __init__(
        self,
        precision: Precision = Precision.FP64,
        n: int = GEMM_N,
        functional_n: int = 96,
    ) -> None:
        self.precision = precision
        self.n = n
        self.functional_n = functional_n

    def params(self) -> dict:
        return {"precision": self.precision.label, "n": self.n}

    def _functional_check(self) -> None:
        rng = np.random.default_rng(42)
        fn = self.functional_n
        if self.precision.is_integer:
            a = rng.integers(-4, 5, size=(fn, fn), dtype=np.int8)
            b = rng.integers(-4, 5, size=(fn, fn), dtype=np.int8)
            c = blocked_gemm(a, b, block=32)
            ref = a.astype(np.int32) @ b.astype(np.int32)
            if not np.array_equal(c, ref):
                raise AssertionError("I8 GEMM numerics diverged")
            return
        dtype = self.precision.numpy_dtype
        a = rng.standard_normal((fn, fn)).astype(dtype)
        b = rng.standard_normal((fn, fn)).astype(dtype)
        # The matrix engines ingest reduced-mantissa operands: apply the
        # real BF16/TF32 rounding before multiplying.
        if self.precision is Precision.BF16:
            a, b = quantize_bf16(a), quantize_bf16(b)
        elif self.precision is Precision.TF32:
            a, b = quantize_tf32(a), quantize_tf32(b)
        c = blocked_gemm(a, b, block=32)
        rtol = 1e-2 if dtype == np.float16 else 1e-5
        if not np.allclose(
            c.astype(np.float64),
            a.astype(np.float64) @ b.astype(np.float64),
            rtol=rtol,
            atol=1e-2,
        ):
            raise AssertionError("GEMM numerics diverged")

    def _measure_once(
        self, engine: PerfEngine, n_stacks: int, rep: int
    ) -> Measurement:
        self._functional_check()
        spec = gemm_kernel(self.precision, self.n)
        elapsed = self._traced_kernel_elapsed(engine, spec, n_stacks, rep)
        unit = "Iop/s" if self.precision.is_integer else "Flop/s"
        return Measurement(elapsed_s=elapsed, work=spec.flops, unit=unit)
