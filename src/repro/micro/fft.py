"""Fast Fourier Transform (Section IV-A.6).

"We test Forward and Backward FFTs using a size of 4096 and 20,000 for
1D FFTs, and 10,000 for 2D FFTs.  We use the standard Cooley-Tukey FFT of
5 x N x log2 N number of flops for complex transform and 2.5 x N x log2 N
for real."

The functional implementation is our own FFT stack (the paper's oneMKL
substitute): an iterative radix-2 Cooley-Tukey for power-of-two sizes and
Bluestein's chirp-z algorithm for arbitrary sizes (20,000 and 10,000 are
not powers of two), with 2D transforms via row/column passes.  Everything
is validated against ``numpy.fft`` in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..core.registry import register
from ..core.result import Measurement
from ..sim.engine import PerfEngine
from ..sim.kernel import fft_kernel
from .common import MicroBenchmark

__all__ = [
    "fft",
    "ifft",
    "fft2",
    "ifft2",
    "Fft",
    "FFT_1D_SIZES",
    "FFT_2D_SIZE",
]

#: Paper sizes.
FFT_1D_SIZES = (4096, 20_000)
FFT_2D_SIZE = 10_000


def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    return rev


def _fft_pow2(x: np.ndarray, sign: float) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT over the last axis."""
    n = x.shape[-1]
    y = np.asarray(x, dtype=np.complex128)[..., _bit_reverse_indices(n)].copy()
    m = 1
    while m < n:
        w = np.exp(sign * -2j * np.pi * np.arange(m) / (2 * m))
        y = y.reshape(*y.shape[:-1], n // (2 * m), 2 * m)
        even = y[..., :m]
        odd = y[..., m:] * w
        y = np.concatenate([even + odd, even - odd], axis=-1)
        y = y.reshape(*y.shape[:-2], n)
        m *= 2
    return y


def _bluestein(x: np.ndarray, sign: float) -> np.ndarray:
    """Chirp-z FFT for arbitrary sizes, built on the radix-2 kernel."""
    n = x.shape[-1]
    k = np.arange(n)
    chirp = np.exp(sign * -1j * np.pi * (k * k % (2 * n)) / n)
    a = np.zeros((*x.shape[:-1], _next_pow2(2 * n - 1)), dtype=np.complex128)
    a[..., :n] = np.asarray(x, dtype=np.complex128) * chirp
    m = a.shape[-1]
    b = np.zeros(m, dtype=np.complex128)
    b[:n] = np.conj(chirp)
    b[m - n + 1 :] = np.conj(chirp[1:][::-1])
    conv = _fft_pow2(
        _fft_pow2(a, 1.0) * _fft_pow2(b, 1.0), -1.0
    ) / m
    return conv[..., :n] * chirp


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def fft(x: np.ndarray) -> np.ndarray:
    """Forward complex FFT over the last axis (any size, batched)."""
    x = np.asarray(x)
    n = x.shape[-1]
    if n == 0:
        raise ValueError("empty transform")
    if n == 1:
        return x.astype(np.complex128)
    if n & (n - 1) == 0:
        return _fft_pow2(x, 1.0)
    return _bluestein(x, 1.0)


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse (backward) complex FFT over the last axis."""
    x = np.asarray(x)
    n = x.shape[-1]
    return np.conj(fft(np.conj(x))) / n


def fft2(x: np.ndarray) -> np.ndarray:
    """2D FFT over the last two axes (row pass, then column pass)."""
    if x.ndim < 2:
        raise ValueError("fft2 needs at least 2 dimensions")
    rows = fft(x)
    return np.swapaxes(fft(np.swapaxes(rows, -1, -2)), -1, -2)


def ifft2(x: np.ndarray) -> np.ndarray:
    """Inverse 2D FFT over the last two axes."""
    rows = ifft(x)
    return np.swapaxes(ifft(np.swapaxes(rows, -1, -2)), -1, -2)


@register(
    name="fft",
    category="micro",
    programming_model="SYCL",
    description="Backward and forward FFT",
)
class Fft(MicroBenchmark):
    """The single-precision C2C FFT rows of Table II."""

    def __init__(
        self,
        ndim: int = 1,
        n: int | None = None,
        backward: bool = False,
        functional_n: int = 96,
    ) -> None:
        if ndim not in (1, 2):
            raise ValueError("only 1D and 2D FFTs are benchmarked")
        self.ndim = ndim
        self.n = n if n is not None else (FFT_1D_SIZES[1] if ndim == 1 else FFT_2D_SIZE)
        self.backward = backward
        self.functional_n = functional_n

    def params(self) -> dict:
        return {"ndim": self.ndim, "n": self.n, "backward": self.backward}

    def _functional_check(self) -> None:
        rng = np.random.default_rng(7)
        fn = self.functional_n
        if self.ndim == 1:
            x = rng.standard_normal(fn) + 1j * rng.standard_normal(fn)
            ours = ifft(x) if self.backward else fft(x)
            ref = np.fft.ifft(x) if self.backward else np.fft.fft(x)
        else:
            x = rng.standard_normal((fn, fn)) + 1j * rng.standard_normal((fn, fn))
            ours = ifft2(x) if self.backward else fft2(x)
            ref = np.fft.ifft2(x) if self.backward else np.fft.fft2(x)
        if not np.allclose(ours, ref, rtol=1e-8, atol=1e-8):
            raise AssertionError("FFT numerics diverged")

    def _measure_once(
        self, engine: PerfEngine, n_stacks: int, rep: int
    ) -> Measurement:
        self._functional_check()
        spec = fft_kernel(self.n, ndim=self.ndim)
        rate = engine.fft_rate(self.ndim, n_stacks)
        elapsed = engine.noise.apply(
            spec.flops / rate,
            f"{engine.system.name}:{spec.name}",
            rep,
        )
        return Measurement(elapsed_s=elapsed, work=spec.flops, unit="Flop/s")
