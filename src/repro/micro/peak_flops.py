"""Peak floating-point throughput: a chain of FMAs (Section IV-A.1).

"This OpenMP microbenchmark performs a chain of Fused Multiply Add
instructions (similar to clpeak).  Each kernel performs 16 x 128 FMA
operations using single and double precision floating point values."

The functional kernel really evaluates the FMA chain (vectorised over
lanes); its closed form ``x_n = a^n x_0 + b (a^n - 1)/(a - 1)`` is used
by the test suite to verify every element.  The measured rate comes from
the engine's FMA model, which reproduces the Table II flops rows
including the FP64 TDP downclock.
"""

from __future__ import annotations

import numpy as np

from ..core.registry import register
from ..core.result import Measurement
from ..dtypes import Precision
from ..sim.engine import PerfEngine
from ..sim.kernel import fma_chain_kernel
from .common import MicroBenchmark

__all__ = ["PeakFlops", "fma_chain", "fma_chain_reference"]

#: Section IV-A.1: each kernel performs 16 x 128 FMA operations.
CHAIN_LENGTH = 16 * 128


def fma_chain(
    x0: np.ndarray, a: float, b: float, n: int = CHAIN_LENGTH
) -> np.ndarray:
    """Evaluate ``x <- a*x + b`` *n* times, vectorised over lanes.

    This is the actual arithmetic the benchmark times on real hardware;
    NumPy evaluates it lane-parallel exactly like the GPU's SIMD units.
    """
    if n < 0:
        raise ValueError("chain length must be non-negative")
    x = np.array(x0, copy=True)
    for _ in range(n):
        x = a * x + b  # one fused multiply-add per lane
    return x


def fma_chain_reference(
    x0: np.ndarray, a: float, b: float, n: int = CHAIN_LENGTH
) -> np.ndarray:
    """Closed form of the FMA chain (geometric series)."""
    an = a**n
    if a == 1.0:
        return x0 + n * b
    return an * np.asarray(x0) + b * (an - 1.0) / (a - 1.0)


@register(
    name="peak_flops",
    category="micro",
    programming_model="OpenMP",
    description="Chain of FMA to measure FLOPS",
)
class PeakFlops(MicroBenchmark):
    """The Peak Compute rows of Table II."""

    def __init__(
        self,
        precision: Precision = Precision.FP64,
        lanes: int = 64,
        functional_chain: int = 64,
    ) -> None:
        self.precision = precision
        self.lanes = lanes
        self.functional_chain = functional_chain

    def params(self) -> dict:
        return {"precision": self.precision.label, "chain": CHAIN_LENGTH}

    def _measure_once(
        self, engine: PerfEngine, n_stacks: int, rep: int
    ) -> Measurement:
        # Functional leg: actually run (a shortened) chain and check it.
        dtype = self.precision.numpy_dtype
        if not self.precision.is_integer:
            x0 = np.linspace(0.0, 1.0, self.lanes, dtype=dtype)
            a = dtype.type(0.99) if hasattr(dtype, "type") else 0.99
            out = fma_chain(x0, float(a), 0.5, self.functional_chain)
            ref = fma_chain_reference(x0, float(a), 0.5, self.functional_chain)
            if not np.allclose(out, ref, rtol=1e-3):
                raise AssertionError("FMA chain numerics diverged")

        # Timed leg: a device-filling chain through the engine.  The rate
        # implied by (work / elapsed) is exactly the engine's achieved
        # multi-stack FMA rate.
        spec = fma_chain_kernel(self.precision, lanes=2**20)
        elapsed = engine.kernel_time_s(spec, n_stacks, rep=rep)
        return Measurement(elapsed_s=elapsed, work=spec.flops, unit="Flop/s")
