"""Device memory bandwidth: STREAM triad (Section IV-A.2).

"We measure bandwidth to/from the device local High Bandwidth Memory
(HBM) through a simple triad (two loads, one store) kernel in OpenMP
loading 805 MB (192*1024*1024 Bytes (LLC per Stack) * 4 (STREAM factor))
of double precision values per array."

The array size is deliberately 4x the stack's LLC so the kernel streams
from HBM rather than cache — :func:`triad_array_bytes` derives it from
the device model so non-PVC devices get the equivalent sizing.
"""

from __future__ import annotations

import numpy as np

from ..core.registry import register
from ..core.result import Measurement
from ..sim.engine import PerfEngine
from ..sim.kernel import triad_kernel
from .common import MicroBenchmark

__all__ = [
    "Triad",
    "triad",
    "stream_copy",
    "stream_scale",
    "stream_add",
    "STREAM_BYTES_PER_ELEMENT",
    "triad_array_bytes",
    "STREAM_FACTOR",
]

#: The classic STREAM sizing rule: arrays at least 4x the last cache.
STREAM_FACTOR = 4


def triad_array_bytes(engine: PerfEngine) -> int:
    """Per-array size: last-level cache capacity x STREAM factor."""
    llc = engine.device.memory["L2"].capacity_bytes
    return llc * STREAM_FACTOR


def triad(
    b: np.ndarray, c: np.ndarray, scalar: float, out: np.ndarray | None = None
) -> np.ndarray:
    """``a[i] = b[i] + scalar * c[i]`` — two loads, one store.

    Written with in-place operations so the functional kernel moves
    exactly the bytes the model charges for.
    """
    if b.shape != c.shape:
        raise ValueError("triad arrays must have identical shapes")
    if out is None:
        out = np.empty_like(b)
    np.multiply(c, scalar, out=out)
    out += b
    return out


def stream_copy(a: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """STREAM Copy: ``c[i] = a[i]`` (one load, one store)."""
    if out is None:
        out = np.empty_like(a)
    np.copyto(out, a)
    return out


def stream_scale(
    a: np.ndarray, scalar: float, out: np.ndarray | None = None
) -> np.ndarray:
    """STREAM Scale: ``b[i] = scalar * c[i]`` (one load, one store)."""
    if out is None:
        out = np.empty_like(a)
    np.multiply(a, scalar, out=out)
    return out


def stream_add(
    a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """STREAM Add: ``c[i] = a[i] + b[i]`` (two loads, one store)."""
    if a.shape != b.shape:
        raise ValueError("add arrays must have identical shapes")
    if out is None:
        out = np.empty_like(a)
    np.add(a, b, out=out)
    return out


#: Bytes moved per element for each STREAM kernel (FP64).
STREAM_BYTES_PER_ELEMENT = {
    "copy": 16,  # 1 load + 1 store
    "scale": 16,
    "add": 24,  # 2 loads + 1 store
    "triad": 24,
}


@register(
    name="triad",
    category="micro",
    programming_model="OpenMP",
    description="Triad used for HBM bandwidth",
)
class Triad(MicroBenchmark):
    """The Memory Bandwidth (triad) row of Table II."""

    def __init__(self, functional_elements: int = 1 << 16) -> None:
        self.functional_elements = functional_elements

    def params(self) -> dict:
        return {"stream_factor": STREAM_FACTOR}

    def _measure_once(
        self, engine: PerfEngine, n_stacks: int, rep: int
    ) -> Measurement:
        # Functional leg at reduced size.
        b = np.linspace(0.0, 1.0, self.functional_elements)
        c = np.linspace(1.0, 2.0, self.functional_elements)
        a = triad(b, c, 3.0)
        if not np.allclose(a, b + 3.0 * c):
            raise AssertionError("triad numerics diverged")

        # Timed leg at paper scale.
        spec = triad_kernel(triad_array_bytes(engine))
        elapsed = self._traced_kernel_elapsed(engine, spec, n_stacks, rep)
        return Measurement(elapsed_s=elapsed, work=spec.total_bytes, unit="B/s")
