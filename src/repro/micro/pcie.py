"""Host <-> device transfer bandwidth over PCIe (Section IV-A.3).

"This benchmark measures the time to transfer data over the PCIe bus,
500 MB in the case of host-to-device, device-to-host, or a total of 1 GB
when transferred simultaneously in both directions.  We use
sycl::malloc_host() for the host memory."

Three scopes appear in Table II: one stack, one PVC (both stacks of one
card — they share the card's single PCIe link, so the rate barely moves),
and the full node (where the host-side aggregate cap produces the "scales
poorly, 40%" result).
"""

from __future__ import annotations

import numpy as np

from ..core.registry import register
from ..core.result import Measurement
from ..core.units import MB
from ..errors import DeviceLostError
from ..hw.ids import StackRef
from ..sim.engine import PerfEngine
from ..runtime.sycl import SyclRuntime
from .common import MicroBenchmark


def _host_routable(engine: PerfEngine, ref: StackRef) -> bool:
    """Host traffic enters a card through stack 0 (Section II); losing
    that stack orphans its sibling even if the sibling still computes."""
    anchor = StackRef(ref.card, 0)
    return not engine.node.fabric.is_down(anchor)

__all__ = ["PcieBandwidth", "TRANSFER_BYTES"]

#: Section IV-A.3: 500 MB per direction.
TRANSFER_BYTES = 500 * MB


@register(
    name="pcie",
    category="micro",
    programming_model="SYCL",
    description="Compute the Bandwidth of the PCIe datatransfer",
)
class PcieBandwidth(MicroBenchmark):
    """The PCIe rows of Table II.

    ``direction`` is ``"h2d"``, ``"d2h"`` or ``"bidir"``.
    """

    def __init__(
        self,
        direction: str = "h2d",
        nbytes: int = TRANSFER_BYTES,
        payload_bytes: int | None = None,
    ) -> None:
        if direction not in ("h2d", "d2h", "bidir"):
            raise ValueError(f"bad direction {direction!r}")
        self.direction = direction
        self.nbytes = nbytes
        # Functional buffer size; defaults to the full declared message.
        self.payload_bytes = min(payload_bytes or nbytes, nbytes)

    def params(self) -> dict:
        return {"direction": self.direction, "nbytes": self.nbytes}

    def _single_transfer(
        self, engine: PerfEngine, rep: int
    ) -> tuple[float, float]:
        """One queue doing the 500 MB (or 1 GB bidir) transfer via SYCL."""
        rt = SyclRuntime(engine)
        device = rt.default_device()
        if engine.faults is not None and not _host_routable(engine, device.ref):
            usable = [d for d in rt.devices() if _host_routable(engine, d.ref)]
            if not usable:
                raise DeviceLostError(
                    "no enumerated device has a live PCIe path"
                )
            engine.faults.note(
                f"PCIe benchmark moved from {device.ref} to {usable[0].ref}: "
                "host path lost"
            )
            device = usable[0]
        queue = rt.queue(device)
        queue.set_repetition(rep)
        payload = self.payload_bytes
        host = queue.malloc_host(payload)
        dev = queue.malloc_device(payload)
        host.buffer[:8] = np.arange(8, dtype=np.uint8)
        if self.direction == "h2d":
            ev = queue.memcpy(dev, host, timed_nbytes=self.nbytes)
            moved = float(self.nbytes)
            if dev.buffer[3] != 3:
                raise AssertionError("H2D payload corrupted")
        elif self.direction == "d2h":
            dev.buffer[:8] = np.arange(8, dtype=np.uint8)
            ev = queue.memcpy(host, dev, timed_nbytes=self.nbytes)
            moved = float(self.nbytes)
            if host.buffer[3] != 3:
                raise AssertionError("D2H payload corrupted")
        else:
            host2 = queue.malloc_host(payload)
            dev2 = queue.malloc_device(payload)
            ev = queue.memcpy_bidirectional(
                host2, dev2, dev, host, payload, timed_nbytes=self.nbytes
            )
            moved = 2.0 * self.nbytes
        return ev.duration_s, moved

    def _measure_once(
        self, engine: PerfEngine, n_stacks: int, rep: int
    ) -> Measurement:
        if n_stacks == 1:
            elapsed, moved = self._single_transfer(engine, rep)
            return Measurement(elapsed_s=elapsed, work=moved, unit="B/s")
        # Concurrent transfers from n_stacks stacks: aggregate bandwidth
        # through the card-sharing + host-cap contention model.  Lost
        # devices are skipped (the surviving stacks still transfer).
        refs = engine.select_stacks(n_stacks)
        if engine.faults is not None:
            routable = [r for r in refs if _host_routable(engine, r)]
            if len(routable) < len(refs):
                engine.faults.note(
                    f"{len(refs) - len(routable)} stack(s) lost their host "
                    "path (PCIe anchor down); excluded from the aggregate"
                )
            if not routable:
                raise DeviceLostError("no stack has a live PCIe path")
            refs = routable
        agg_bw = engine.transfers.node_host_bw(self.direction, refs)
        per_flow_bytes = float(self.nbytes) * (
            2.0 if self.direction == "bidir" else 1.0
        )
        total_bytes = per_flow_bytes * len({r.card for r in refs})
        elapsed = engine.noise.apply(
            total_bytes / agg_bw,
            f"{engine.system.name}:pcie-agg:{self.direction}:{n_stacks}",
            rep,
        )
        return Measurement(elapsed_s=elapsed, work=total_bytes, unit="B/s")
