"""Shared microbenchmark machinery.

Every microbenchmark follows the paper's protocol (Section IV-A): run
several repetitions, report the best.  :class:`MicroBenchmark` wires that
protocol to the performance engine and exposes a uniform
``measure(engine, n_stacks)`` entry point used by the table regenerators.
"""

from __future__ import annotations

import abc

from ..core.resilient import ResilientRunner
from ..core.result import BenchmarkResult, DeviceScope, Measurement
from ..core.runner import RunPlan, Runner
from ..errors import DeviceLostError
from ..sim.engine import PerfEngine
from ..sim.kernel import KernelSpec

__all__ = ["MicroBenchmark", "scope_for", "runner_for"]


def runner_for(
    engine: PerfEngine, plan: RunPlan | None, runner: Runner | None = None
) -> Runner:
    """The runner a benchmark should use on *engine*.

    An explicit *runner* wins; otherwise an engine with a fault injector
    attached gets the resilient protocol (retry/timeout/quarantine) and a
    clean engine keeps the plain repeat-and-take-best runner.  Either way
    the engine's telemetry session (if any) rides along.
    """
    if runner is not None:
        return runner
    if engine.faults is not None:
        return ResilientRunner(
            plan, injector=engine.faults, telemetry=engine.telemetry
        )
    return Runner(plan, telemetry=engine.telemetry)


def scope_for(engine: PerfEngine, n_stacks: int) -> DeviceScope:
    """Map a stack count to the paper's scope names for this system."""
    node = engine.node
    per_card = node.card.n_devices
    if n_stacks == 1:
        name = "One Stack" if per_card == 2 else "One GPU"
    elif n_stacks == per_card:
        name = "One PVC" if engine.device.arch == "pvc" else "One GPU"
    elif n_stacks == node.n_stacks:
        name = engine.system.full_node_scope_name()
    else:
        name = f"{n_stacks} Stacks"
    return DeviceScope(name, n_stacks)


class MicroBenchmark(abc.ABC):
    """Base class for the seven microbenchmarks of Table I."""

    #: Set by the @register decorator.
    benchmark_name: str = ""

    @abc.abstractmethod
    def _measure_once(
        self, engine: PerfEngine, n_stacks: int, rep: int
    ) -> Measurement:
        """One repetition: returns elapsed simulated time + work done."""

    def measure(
        self,
        engine: PerfEngine,
        n_stacks: int = 1,
        plan: RunPlan | None = None,
        runner: Runner | None = None,
    ) -> BenchmarkResult:
        """Run the repeat-and-take-best protocol at the given scope."""
        runner = runner_for(engine, plan, runner)
        return runner.run(
            benchmark=self.benchmark_name or type(self).__name__,
            system=engine.system.name,
            scope=scope_for(engine, n_stacks),
            measure=lambda rep: self._measure_once(engine, n_stacks, rep),
            params=self.params(),
        )

    def params(self) -> dict:
        """Benchmark-specific configuration recorded with results."""
        return {}

    # ------------------------------------------------------------------
    # traced kernel execution
    # ------------------------------------------------------------------

    def _traced_kernel_elapsed(
        self, engine: PerfEngine, spec: KernelSpec, n_stacks: int, rep: int
    ) -> float:
        """Kernel time for one repetition, through traced queues when a
        telemetry session is attached.

        Untelemetered runs call :meth:`PerfEngine.kernel_time_s` directly
        (byte-identical to the pre-telemetry behaviour).  With telemetry,
        the kernel is submitted on one SYCL queue per selected stack so
        each ``gpu C.S`` lane shows its timeline; the queues are acquired
        once and kept across repetitions — like real benchmark setup code
        — so a device lost mid-run surfaces as a retryable
        :class:`~repro.errors.DeviceLostError` on the next submit, and
        the retry re-acquires queues on the survivors.
        """
        tel = engine.telemetry
        if tel is None:
            return engine.kernel_time_s(spec, n_stacks, rep=rep)
        cache = self.__dict__.setdefault("_queue_cache", {})
        key = (engine.system.name, n_stacks)
        queues = cache.get(key)
        if queues is None:
            queues = [
                tel.sycl_queue(engine, ref)
                for ref in engine.select_stacks(n_stacks)
            ]
            cache[key] = queues
        try:
            events = []
            for queue in queues:
                queue.set_repetition(rep)
                events.append(queue.submit(spec, n_stacks=n_stacks))
        except DeviceLostError:
            cache.pop(key, None)
            raise
        if getattr(tel, "profiler", None) is not None:
            # Profiled runs read the timestamps the way the paper's SYCL
            # ports do — through the event's profiling info (each query
            # is itself an intercepted API call).
            durations = []
            for event in events:
                info = event.profiling_info()
                durations.append(
                    (info["command_end"] - info["command_start"]) * 1e-9
                )
            return max(durations)
        return max(event.duration_s for event in events)
