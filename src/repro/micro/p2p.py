"""Device-to-device transfer bandwidth (Section IV-A.4, Table III).

Two pair classes:

* **local** — the two stacks of one PVC card, over the stack-to-stack
  (MDFI) interconnect;
* **remote** — stacks on different cards, over Xe-Link, subject to the
  plane topology (cross-plane pairs take one of the two 2-hop routes the
  paper enumerates; either way the Xe-Link hop is the bottleneck, which
  is why remote bandwidth is "in fact slower than PCIe").

The single-pair measurement runs a real ``Isend``/``Irecv``/``Waitall``
exchange through the simulated MPI layer (one rank per stack, as the
paper runs MPICH with Level Zero support); the all-pairs rows use the
transfer model's concurrent-pair contention and the measured parallel
efficiency.
"""

from __future__ import annotations

import numpy as np

from ..core.registry import register
from ..core.result import BenchmarkResult, DeviceScope, Measurement, SampleSet
from ..core.runner import RunPlan, Runner
from ..core.units import MB
from ..hw.ids import StackRef
from ..errors import DeviceLostError, TopologyError
from ..sim.engine import PerfEngine
from ..runtime.mpi import Communicator, SimMPI
from .common import MicroBenchmark, runner_for

__all__ = ["P2PBandwidth", "MESSAGE_BYTES", "local_pairs", "remote_pairs"]

#: Section IV-A.4: "messages of 500 MB in size".
MESSAGE_BYTES = 500 * MB

#: Functional payload carried inside each declared-500MB message.
_PAYLOAD_ELEMENTS = 4096


def local_pairs(engine: PerfEngine) -> list[tuple[StackRef, StackRef]]:
    """One (stack 0, stack 1) pair per card."""
    node = engine.node
    if node.card.n_devices != 2:
        return []
    return [(StackRef(c, 0), StackRef(c, 1)) for c in range(node.n_cards)]


def remote_pairs(engine: PerfEngine) -> list[tuple[StackRef, StackRef]]:
    """Disjoint cross-card stack pairs: card 2k stack s <-> card 2k+1 stack s."""
    node = engine.node
    pairs = []
    for c in range(0, node.n_cards - 1, 2):
        for s in range(node.card.n_devices):
            pairs.append((StackRef(c, s), StackRef(c + 1, s)))
    return pairs


def _rank_of(engine: PerfEngine, ref: StackRef) -> int:
    return engine.node.stacks().index(ref)


@register(
    name="p2p",
    category="micro",
    programming_model="SYCL",
    description=(
        "Measure the Bandwidth between 2 Ranks (Stacks on the GPU & "
        "between GPUs)"
    ),
)
class P2PBandwidth(MicroBenchmark):
    """Table III: local/remote, uni/bidirectional, one pair or all pairs."""

    def __init__(
        self,
        pair_class: str = "local",
        bidirectional: bool = False,
        nbytes: int = MESSAGE_BYTES,
    ) -> None:
        if pair_class not in ("local", "remote"):
            raise ValueError(f"bad pair class {pair_class!r}")
        self.pair_class = pair_class
        self.bidirectional = bidirectional
        self.nbytes = nbytes

    def params(self) -> dict:
        return {
            "pair_class": self.pair_class,
            "bidirectional": self.bidirectional,
            "nbytes": self.nbytes,
        }

    def _pairs(self, engine: PerfEngine) -> list[tuple[StackRef, StackRef]]:
        pairs = (
            local_pairs(engine)
            if self.pair_class == "local"
            else remote_pairs(engine)
        )
        if not pairs:
            raise ValueError(
                f"{engine.system.name} has no {self.pair_class} stack pairs"
            )
        if engine.faults is not None:
            alive = [
                (a, b)
                for a, b in pairs
                if not (engine.faults.is_dead(a) or engine.faults.is_dead(b))
            ]
            if len(alive) < len(pairs):
                engine.faults.note(
                    f"{len(pairs) - len(alive)} {self.pair_class} pair(s) "
                    "skipped: endpoint device lost"
                )
            if not alive:
                raise DeviceLostError(
                    f"every {self.pair_class} stack pair has a lost endpoint"
                )
            pairs = alive
            fabric = engine.node.fabric
            if fabric.has_degradation:
                def _degraded(a: StackRef, b: StackRef) -> bool:
                    # Unroutable pairs are left in: measuring one raises
                    # TopologyError and fails that cell, as intended.
                    try:
                        return fabric.is_route_degraded(a, b)
                    except TopologyError:
                        return False

                hit = [(a, b) for a, b in pairs if _degraded(a, b)]
                if hit:
                    engine.faults.note(
                        f"{len(hit)} {self.pair_class} pair(s) measured over "
                        "degraded fabric (rerouted or reduced-health links)"
                    )
        return pairs

    # -- single pair via the MPI layer -------------------------------------

    def _single_pair_elapsed(self, engine: PerfEngine) -> tuple[float, float]:
        src, dst = self._pairs(engine)[0]
        rank_a, rank_b = _rank_of(engine, src), _rank_of(engine, dst)
        nbytes = self.nbytes
        bidir = self.bidirectional
        payload = np.full(_PAYLOAD_ELEMENTS, 7.0)

        def program(comm: Communicator):
            me = comm.rank
            if me not in (rank_a, rank_b):
                return None
            peer = rank_b if me == rank_a else rank_a
            if bidir:
                reqs = [
                    comm.Isend(payload, peer, tag=1, nbytes=nbytes),
                    comm.Irecv(peer, tag=1),
                ]
                out = comm.Waitall(reqs)[1]
            elif me == rank_a:
                comm.Waitall([comm.Isend(payload, peer, tag=2, nbytes=nbytes)])
                out = payload
            else:
                out = comm.Waitall([comm.Irecv(peer, tag=2)])[0]
            assert out is not None and out[0] == 7.0
            return comm.now

        times = SimMPI(engine).run(program)
        elapsed = max(t for t in times if t is not None)
        moved = float(nbytes) * (2.0 if bidir else 1.0)
        if bidir:
            # The MPI virtual clocks time each link direction independently;
            # the *simultaneous* two-way contention (the paper's 284 vs
            # 2x197 observation) comes from the transfer model's measured
            # bidirectional factor.
            bw = engine.transfers.p2p_bw(src, dst, bidirectional=True)
            elapsed = moved / bw + engine.transfers.p2p_route(src, dst).latency_s
        return elapsed, moved

    def _measure_once(
        self, engine: PerfEngine, n_stacks: int, rep: int
    ) -> Measurement:
        raise NotImplementedError  # measure() is overridden below

    # -- public entry points -------------------------------------------------

    def measure(
        self,
        engine: PerfEngine,
        n_stacks: int = 1,
        plan: RunPlan | None = None,
        runner: Runner | None = None,
    ) -> BenchmarkResult:
        """``n_stacks`` selects the scope: 1 => one pair, else all pairs."""
        all_pairs = n_stacks > 1
        pairs = self._pairs(engine)
        n_pairs = len(pairs) if all_pairs else 1
        scope = DeviceScope(
            f"{'Six' if n_pairs == 6 else 'Four' if n_pairs == 4 else n_pairs}"
            f" Stack-Pair{'s' if n_pairs > 1 else ''}"
            if all_pairs
            else "One Stack-Pair",
            max(1, 2 * n_pairs),
        )

        def measure_one(rep: int) -> Measurement:
            if not all_pairs:
                elapsed, moved = self._single_pair_elapsed(engine)
                elapsed = engine.noise.apply(
                    elapsed,
                    f"{engine.system.name}:p2p1:{self.pair_class}:"
                    f"{self.bidirectional}",
                    rep,
                )
                return Measurement(elapsed_s=elapsed, work=moved, unit="B/s")
            # Re-select pairs each repetition: a device lost mid-benchmark
            # drops its pair from the aggregate instead of failing the cell.
            live = self._pairs(engine)
            agg = engine.transfers.concurrent_p2p_bw(
                live, bidirectional=self.bidirectional
            )
            per_pair = float(self.nbytes) * (2.0 if self.bidirectional else 1.0)
            total = per_pair * len(live)
            elapsed = engine.noise.apply(
                total / agg,
                f"{engine.system.name}:p2pN:{self.pair_class}:"
                f"{self.bidirectional}",
                rep,
            )
            tel = engine.telemetry
            if tel is not None:
                # One concurrent transfer bar per source stack: the lanes
                # show the all-pairs contention window side by side.
                for a, b in live:
                    tel.tracer.complete(
                        f"p2p {a}->{b}",
                        tel.gpu_lane(a),
                        duration_us=elapsed * 1e6,
                        category="transfer",
                        nbytes=per_pair,
                        peer=str(b),
                    )
                tel.metrics.inc(
                    "transfer.bytes", total,
                    path=self.pair_class, concurrent=len(live),
                )
            return Measurement(elapsed_s=elapsed, work=total, unit="B/s")

        runner = runner_for(engine, plan, runner)
        return runner.run(
            benchmark=self.benchmark_name,
            system=engine.system.name,
            scope=scope,
            measure=measure_one,
            params=self.params(),
        )
