"""The seven microbenchmarks of the paper's Table I.

Importing this package registers every microbenchmark in the global
registry (:mod:`repro.core.registry`).
"""

from .common import MicroBenchmark, scope_for
from .fft import FFT_1D_SIZES, FFT_2D_SIZE, Fft, fft, fft2, ifft, ifft2
from .gemm import GEMM_PRECISIONS, Gemm, blocked_gemm
from .lats import (
    Lats,
    build_chain,
    chase,
    chase_coalesced,
    default_sizes,
    latency_curve,
)
from .p2p import MESSAGE_BYTES, P2PBandwidth, local_pairs, remote_pairs
from .pcie import TRANSFER_BYTES, PcieBandwidth
from .sweep import (
    SweepPoint,
    fma_chain_sweep,
    gemm_size_sweep,
    half_bandwidth_point,
    message_size_sweep,
)
from .peak_flops import CHAIN_LENGTH, PeakFlops, fma_chain, fma_chain_reference
from .triad import STREAM_FACTOR, Triad, triad, triad_array_bytes

__all__ = [
    "MicroBenchmark",
    "scope_for",
    "FFT_1D_SIZES",
    "FFT_2D_SIZE",
    "Fft",
    "fft",
    "fft2",
    "ifft",
    "ifft2",
    "GEMM_PRECISIONS",
    "Gemm",
    "blocked_gemm",
    "Lats",
    "build_chain",
    "chase",
    "chase_coalesced",
    "default_sizes",
    "latency_curve",
    "MESSAGE_BYTES",
    "P2PBandwidth",
    "local_pairs",
    "remote_pairs",
    "TRANSFER_BYTES",
    "PcieBandwidth",
    "SweepPoint",
    "fma_chain_sweep",
    "gemm_size_sweep",
    "half_bandwidth_point",
    "message_size_sweep",
    "CHAIN_LENGTH",
    "PeakFlops",
    "fma_chain",
    "fma_chain_reference",
    "STREAM_FACTOR",
    "Triad",
    "triad",
    "triad_array_bytes",
]
