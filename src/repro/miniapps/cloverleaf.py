"""CloverLeaf: compressible-Euler hydrodynamics (Section V-A.2).

"Cloverleaf is a Lagrangian-Eulerian hydrodynamics benchmark, which
represents a memory-bandwidth-bound workload. ... the mini-app computes
the solution of compressible Euler equations; a system of four partial
differential equations representing the conservation of energy, density,
and momentum. ... A grid of size 15360 (~47 GB) is solved on each rank,
and the results are weakly scaled up to a full node. ... The number of
cells divided by the total runtime represents the Figure of Merit."

Functional leg: a real 2D finite-volume compressible Euler solver —
ideal-gas EOS, HLL Riemann fluxes, dimensionally-split updates, CFL
timestep control, periodic or reflective boundaries, and an MPI-decomposed
driver with halo exchange over the simulated fabric.  Conservation and
shock-tube behaviour are validated in the test suite.

FOM leg: memory-bandwidth-bound cells/second with the calibrated achieved
fraction of stream bandwidth and the measured weak-scaling efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register
from ..errors import ConfigurationError
from ..runtime.mpi import Communicator
from ..sim.calibration import CloverLeafCalibration, get_app_calibration
from ..sim.engine import PerfEngine
from .base import MiniApp

__all__ = [
    "EulerState",
    "EulerSolver2D",
    "sod_state",
    "exchange_halos",
    "run_distributed",
    "CloverLeaf",
    "PAPER_GRID",
    "BENCH_STEPS",
    "BYTES_PER_CELL_STEP",
]

GAMMA = 1.4

#: Paper problem: 15360^2 cells per rank (~47 GB of field data).
PAPER_GRID = 15_360

#: FOM model constants: a CloverLeaf benchmark run advances ~87 steps and
#: each step streams ~469 bytes per cell through HBM (the ~15 field
#: arrays touched by the PdV, flux and advection kernels).  Their product
#: is what the bandwidth-bound FOM depends on.
BENCH_STEPS = 87
BYTES_PER_CELL_STEP = 469.0


@dataclass
class EulerState:
    """Conserved variables on a 2D grid: [rho, rho*u, rho*v, E]."""

    u: np.ndarray  # (4, ny, nx)

    def __post_init__(self) -> None:
        if self.u.ndim != 3 or self.u.shape[0] != 4:
            raise ConfigurationError("state must be (4, ny, nx)")

    @property
    def shape(self) -> tuple[int, int]:
        return self.u.shape[1], self.u.shape[2]

    @property
    def density(self) -> np.ndarray:
        return self.u[0]

    @property
    def momentum_x(self) -> np.ndarray:
        return self.u[1]

    @property
    def momentum_y(self) -> np.ndarray:
        return self.u[2]

    @property
    def energy(self) -> np.ndarray:
        return self.u[3]

    def primitives(self) -> tuple[np.ndarray, ...]:
        """(rho, u, v, p) with the ideal-gas EOS."""
        rho = self.u[0]
        vx = self.u[1] / rho
        vy = self.u[2] / rho
        kinetic = 0.5 * rho * (vx * vx + vy * vy)
        p = (GAMMA - 1.0) * (self.u[3] - kinetic)
        return rho, vx, vy, p

    def totals(self) -> np.ndarray:
        """Conserved totals [mass, mom_x, mom_y, energy] (for tests)."""
        return self.u.sum(axis=(1, 2))


def sod_state(n: int = 128, axis: str = "x") -> EulerState:
    """The Sod shock tube, extruded to 2D along *axis*."""
    u = np.zeros((4, n, n))
    rho = np.where(np.arange(n) < n // 2, 1.0, 0.125)
    p = np.where(np.arange(n) < n // 2, 1.0, 0.1)
    if axis == "x":
        u[0] = rho[None, :]
        u[3] = (p / (GAMMA - 1.0))[None, :]
    elif axis == "y":
        u[0] = rho[:, None]
        u[3] = (p / (GAMMA - 1.0))[:, None]
    else:
        raise ConfigurationError(f"bad axis {axis!r}")
    return EulerState(u)


def _hll_flux(ul: np.ndarray, ur: np.ndarray) -> np.ndarray:
    """HLL flux for the 1D Euler system along the last axis.

    ``ul``/``ur`` are left/right conserved states (4, ...) at each
    interface; returns the interface flux (4, ...).
    """

    def prim(u):
        rho = u[0]
        v = u[1] / rho
        vt = u[2] / rho
        p = (GAMMA - 1.0) * (u[3] - 0.5 * rho * (v * v + vt * vt))
        p = np.maximum(p, 1e-12)
        return rho, v, vt, p

    def flux(u, rho, v, p):
        f = np.empty_like(u)
        f[0] = u[1]
        f[1] = u[1] * v + p
        f[2] = u[2] * v
        f[3] = (u[3] + p) * v
        return f

    rl, vl, _, pl = prim(ul)
    rr, vr, _, pr = prim(ur)
    cl = np.sqrt(GAMMA * pl / rl)
    cr = np.sqrt(GAMMA * pr / rr)
    sl = np.minimum(vl - cl, vr - cr)
    sr = np.maximum(vl + cl, vr + cr)
    fl = flux(ul, rl, vl, pl)
    fr = flux(ur, rr, vr, pr)
    # HLL: F = (sr*Fl - sl*Fr + sl*sr*(Ur - Ul)) / (sr - sl), bounded by
    # the pure upwind fluxes when all waves move one way.
    denom = np.where(np.abs(sr - sl) < 1e-12, 1e-12, sr - sl)
    fhll = (sr * fl - sl * fr + sl * sr * (ur - ul)) / denom
    out = np.where(sl >= 0.0, fl, np.where(sr <= 0.0, fr, fhll))
    return out


def _minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The minmod slope limiter: 0 at extrema, the smaller slope else."""
    return np.where(
        a * b <= 0.0, 0.0, np.where(np.abs(a) < np.abs(b), a, b)
    )


class EulerSolver2D:
    """Dimensionally-split HLL finite-volume solver on a periodic or
    reflective square domain of unit cell size.

    ``order=1`` is the plain Godunov/HLL scheme; ``order=2`` adds
    MUSCL reconstruction (minmod-limited linear slopes), sharpening
    shocks and contacts while remaining conservative and positive.
    """

    def __init__(
        self,
        state: EulerState,
        cfl: float = 0.4,
        boundary: str = "periodic",
        order: int = 1,
    ) -> None:
        if boundary not in ("periodic", "reflective"):
            raise ConfigurationError(f"bad boundary {boundary!r}")
        if not (0.0 < cfl < 1.0):
            raise ConfigurationError("CFL must be in (0, 1)")
        if order not in (1, 2):
            raise ConfigurationError("order must be 1 or 2")
        self.state = state
        self.cfl = cfl
        self.boundary = boundary
        self.order = order
        self.time = 0.0
        self.steps_taken = 0

    # -- timestep -------------------------------------------------------------

    def stable_dt(self) -> float:
        rho, vx, vy, p = self.state.primitives()
        c = np.sqrt(GAMMA * np.maximum(p, 1e-12) / rho)
        smax = float(np.max(np.abs(vx) + c)) + float(np.max(np.abs(vy) + c))
        return self.cfl / max(smax, 1e-12)

    # -- boundaries ------------------------------------------------------------

    def _pad(self, u: np.ndarray, axis: int, width: int = 1) -> np.ndarray:
        if self.boundary == "periodic":
            lo = u.take(range(-width, 0), axis=axis)
            hi = u.take(range(width), axis=axis)
            return np.concatenate([lo, u, hi], axis=axis)
        # Reflective: mirror the first/last `width` cells (reversed) and
        # flip the normal momentum.  Callers always arrange the sweep's
        # normal momentum at component 1 before padding.
        lo = u.take(range(width - 1, -1, -1), axis=axis).copy()
        hi = u.take(range(-1, -width - 1, -1), axis=axis).copy()
        lo[1] *= -1.0
        hi[1] *= -1.0
        return np.concatenate([lo, u, hi], axis=axis)

    # -- sweeps --------------------------------------------------------------

    def _flux_divergence(self, u: np.ndarray, dt: float) -> np.ndarray:
        """dt * d(F)/dx along the last axis, for *u* already padded once
        (first order) or twice (MUSCL)."""
        if self.order == 1:
            f = _hll_flux(u[..., :-1], u[..., 1:])
            return dt * (f[..., 1:] - f[..., :-1])
        # MUSCL: minmod-limited linear reconstruction needs two ghosts.
        centre = u[..., 1:-1]
        slope = _minmod(
            centre - u[..., :-2], u[..., 2:] - centre
        )
        right_face = centre + 0.5 * slope  # each cell's right interface
        left_face = centre - 0.5 * slope  # each cell's left interface
        f = _hll_flux(right_face[..., :-1], left_face[..., 1:])
        return dt * (f[..., 1:] - f[..., :-1])

    def _sweep_x(self, dt: float) -> None:
        u = self._pad(self.state.u, axis=2, width=self.order)
        self.state.u -= self._flux_divergence(u, dt)

    def _sweep_y(self, dt: float) -> None:
        # Swap the roles of the x and y momenta so the HLL kernel (which
        # treats component 1 as the normal momentum) sweeps along y.
        u = self._pad(self.state.u[[0, 2, 1, 3]], axis=1, width=self.order)
        swapped = np.swapaxes(u, 1, 2)
        du = np.swapaxes(self._flux_divergence(swapped, dt), 1, 2)
        self.state.u -= du[[0, 2, 1, 3]]

    def step(self, dt: float | None = None) -> float:
        """One Strang-split step; returns the dt used."""
        if dt is None:
            dt = self.stable_dt()
        self._sweep_x(0.5 * dt)
        self._sweep_y(dt)
        self._sweep_x(0.5 * dt)
        self.time += dt
        self.steps_taken += 1
        return dt

    def run(self, steps: int) -> EulerState:
        for _ in range(steps):
            self.step()
        return self.state


def exchange_halos(
    comm: Communicator, u: np.ndarray, left: int | None, right: int | None
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Exchange one-column halos with strip-decomposition neighbours.

    Returns (halo from left neighbour, halo from right neighbour); the
    payloads ride the simulated fabric, advancing virtual clocks.
    """
    reqs = []
    if right is not None:
        reqs.append(comm.Isend(np.ascontiguousarray(u[:, :, -1]), right, tag=11))
    if left is not None:
        reqs.append(comm.Isend(np.ascontiguousarray(u[:, :, 0]), left, tag=12))
    from_left = comm.Irecv(left, tag=11).wait() if left is not None else None
    from_right = comm.Irecv(right, tag=12).wait() if right is not None else None
    comm.Waitall(reqs)
    return from_left, from_right


def run_distributed(
    engine,
    n: int = 32,
    steps: int = 6,
    n_ranks: int = 4,
    initial: EulerState | None = None,
) -> tuple[EulerState, float]:
    """Weak-scaled CloverLeaf over the simulated MPI fabric.

    Strip-decomposes a periodic ``n x n`` problem along x across
    *n_ranks* ranks (one per stack), exchanging one-column halos through
    the fabric model each sweep.  Returns the reassembled global state
    and the slowest rank's virtual time (compute assumed overlapped; the
    time reflects communication).  Bit-identical to the serial solver —
    asserted by the integration tests.
    """
    from ..runtime.mpi import Communicator, SimMPI

    if n % n_ranks != 0:
        raise ConfigurationError("n must divide evenly across ranks")
    width = n // n_ranks
    base = initial if initial is not None else sod_state(n)
    # Pre-compute the serial timestep sequence so all ranks agree.
    probe = EulerSolver2D(EulerState(base.u.copy()), boundary="periodic")
    dts = [probe.step() for _ in range(steps)]

    def sweep_x(local: np.ndarray, halo_l, halo_r, dt: float) -> np.ndarray:
        padded = np.concatenate(
            [halo_l[:, :, None], local, halo_r[:, :, None]], axis=2
        )
        f = _hll_flux(padded[:, :, :-1], padded[:, :, 1:])
        return local - dt * (f[:, :, 1:] - f[:, :, :-1])

    def sweep_y(local: np.ndarray, dt: float) -> np.ndarray:
        swapped = local[[0, 2, 1, 3]]
        u_y = np.concatenate(
            [swapped[:, -1:, :], swapped, swapped[:, :1, :]], axis=1
        )
        f = _hll_flux(u_y[:, :-1, :], u_y[:, 1:, :])
        return local - (dt * (f[:, 1:, :] - f[:, :-1, :]))[[0, 2, 1, 3]]

    def program(comm: Communicator):
        lo = comm.rank * width
        local = np.ascontiguousarray(base.u[:, :, lo : lo + width])
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        for dt in dts:
            halo_l, halo_r = exchange_halos(comm, local, left, right)
            local = sweep_x(local, halo_l, halo_r, 0.5 * dt)
            local = sweep_y(local, dt)
            halo_l, halo_r = exchange_halos(comm, local, left, right)
            local = sweep_x(local, halo_l, halo_r, 0.5 * dt)
        return local, comm.now

    results = SimMPI(engine, n_ranks).run(program)
    strips = [r[0] for r in results]
    vtime = max(r[1] for r in results)
    return EulerState(np.concatenate(strips, axis=2)), vtime


@register(
    name="cloverleaf",
    category="miniapp",
    programming_model="SYCL, HIP, CUDA",
    description="Lagrangian-Eulerian hydrodynamics (memory-BW bound)",
)
class CloverLeaf(MiniApp):
    """FOM = cells / time (Mcells/s), weak scaled (Table V)."""

    app_key = "cloverleaf"

    def __init__(self, grid: int = PAPER_GRID, steps: int = BENCH_STEPS) -> None:
        self.grid = grid
        self.steps = steps

    # -- functional ----------------------------------------------------------

    def run_functional(self, n: int = 64, steps: int = 20) -> EulerSolver2D:
        solver = EulerSolver2D(sod_state(n), boundary="reflective")
        solver.run(steps)
        return solver

    # -- FOM -------------------------------------------------------------------

    def fom(self, engine: PerfEngine, n_stacks: int = 1) -> float:
        """Mcells/s across *n_stacks* weak-scaled ranks."""
        self._check_stacks(engine, n_stacks)
        cal = get_app_calibration("cloverleaf", engine.system.calibration_key)
        assert isinstance(cal, CloverLeafCalibration)
        bw = engine.stream_bw(1) * cal.stream_fraction
        per_rank = bw / (self.steps * BYTES_PER_CELL_STEP) / 1e6
        return per_rank * n_stacks * cal.weak_scaling.efficiency(n_stacks)
