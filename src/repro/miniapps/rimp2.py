"""GAMESS RI-MP2 mini-app (Section V-A.4).

"To help explore offloading GAMESS to GPUs, a mini-app for the RI-MP2
method was developed, and it implements the computation of the
perturbative correction.  The main portion of the mini-app is a call to
DGEMM and a reduction ... the FOM is defined by 1/walltime(h), and a
single input (W90.rand, an artificial input with the same data structure
of 90 water clusters) was used."

Functional leg: the actual RI-MP2 correlation-energy algorithm on
synthetic (random, W90.rand-style) inputs — build (ia|jb) integrals from
3-index RI factors ``B[P, i, a]`` with a DGEMM over the auxiliary index,
then reduce with the MP2 energy denominators.  Validated against a
direct O(o^2 v^2 P) reference contraction in the tests.

FOM leg: walltime = F_total / DGEMM-rate + serial overhead, strong-scaled
over stacks (Table V: "DGEMM bound", strong scaling).  On JLSE-MI250 the
build step raises :class:`repro.errors.BuildError`, reproducing the
paper's missing column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register
from ..dtypes import Precision
from ..errors import BuildError, ConfigurationError
from ..sim.calibration import Rimp2Calibration, get_app_calibration
from ..sim.engine import PerfEngine
from .base import MiniApp

__all__ = [
    "Rimp2Input",
    "make_input",
    "rimp2_energy",
    "rimp2_energy_distributed",
    "rimp2_energy_reference",
    "Rimp2",
    "TOTAL_FLOPS_W90",
]

#: Total DGEMM work of the W90.rand input, back-solved from the paper's
#: Table VI walltimes against the measured DGEMM rates (2.37e15 flops
#: reproduces all six PVC cells to within a few percent).
TOTAL_FLOPS_W90 = 2.3746e15


@dataclass(frozen=True)
class Rimp2Input:
    """Synthetic RI-MP2 problem data.

    ``b[P, i, a]`` are the RI 3-index factors (auxiliary P, occupied i,
    virtual a); ``e_occ``/``e_virt`` the orbital energies.
    """

    b: np.ndarray
    e_occ: np.ndarray
    e_virt: np.ndarray

    def __post_init__(self) -> None:
        p, o, v = self.b.shape
        if self.e_occ.shape != (o,) or self.e_virt.shape != (v,):
            raise ConfigurationError("orbital energy shapes do not match B")
        if np.any(self.e_occ >= 0) or np.any(self.e_virt <= 0):
            raise ConfigurationError(
                "occupied energies must be negative, virtuals positive"
            )

    @property
    def sizes(self) -> tuple[int, int, int]:
        return self.b.shape  # (P, o, v)


def make_input(
    n_aux: int = 24, n_occ: int = 8, n_virt: int = 16, seed: int = 0
) -> Rimp2Input:
    """A W90.rand-style random input with a proper HOMO-LUMO gap."""
    rng = np.random.default_rng(seed)
    return Rimp2Input(
        b=rng.standard_normal((n_aux, n_occ, n_virt)) / np.sqrt(n_aux),
        e_occ=-rng.uniform(0.5, 2.0, n_occ),
        e_virt=rng.uniform(0.5, 2.0, n_virt),
    )


def rimp2_energy(inp: Rimp2Input) -> float:
    """RI-MP2 correlation energy via the DGEMM + reduction algorithm.

    For each occupied pair (i, j): ``V_ab = B[:, i, :].T @ B[:, j, :]``
    (the DGEMM the mini-app offloads), then the spin-adapted closed-shell
    reduction ``sum_ab V_ab (2 V_ab - V_ba) / (e_i + e_j - e_a - e_b)``.
    """
    p, o, v = inp.sizes
    energy = 0.0
    for i in range(o):
        bi = inp.b[:, i, :]  # (P, v)
        for j in range(o):
            bj = inp.b[:, j, :]
            v_ab = bi.T @ bj  # the DGEMM
            denom = (
                inp.e_occ[i]
                + inp.e_occ[j]
                - inp.e_virt[:, None]
                - inp.e_virt[None, :]
            )
            energy += float(np.sum(v_ab * (2.0 * v_ab - v_ab.T) / denom))
    return energy


def rimp2_energy_distributed(comm, inp: Rimp2Input) -> float:
    """Strong-scaled RI-MP2 over the simulated MPI job.

    The mini-app's decomposition: occupied pairs (i, j) are dealt
    round-robin to ranks, each rank runs its DGEMMs + reductions, and one
    Allreduce sums the correlation energy.  Bit-identical to the serial
    algorithm (the pair sum is exact, not statistical).
    """
    import numpy as np

    p, o, v = inp.sizes
    local = 0.0
    pairs = [(i, j) for i in range(o) for j in range(o)]
    for idx in range(comm.rank, len(pairs), comm.size):
        i, j = pairs[idx]
        v_ab = inp.b[:, i, :].T @ inp.b[:, j, :]
        denom = (
            inp.e_occ[i]
            + inp.e_occ[j]
            - inp.e_virt[:, None]
            - inp.e_virt[None, :]
        )
        local += float(np.sum(v_ab * (2.0 * v_ab - v_ab.T) / denom))
    total = comm.Allreduce(np.array([local]))
    return float(total[0])


def rimp2_energy_reference(inp: Rimp2Input) -> float:
    """Direct contraction without the per-pair DGEMM factorisation."""
    # (ia|jb) = sum_P B[P,i,a] B[P,j,b]
    iajb = np.einsum("pia,pjb->iajb", inp.b, inp.b)
    denom = (
        inp.e_occ[:, None, None, None]
        + inp.e_occ[None, None, :, None]
        - inp.e_virt[None, :, None, None]
        - inp.e_virt[None, None, None, :]
    )
    return float(
        np.sum(iajb * (2.0 * iajb - np.swapaxes(iajb, 1, 3)) / denom)
    )


@register(
    name="rimp2",
    category="miniapp",
    programming_model="OpenMP",
    description="GAMESS RI-MP2 perturbative correction (DGEMM bound)",
)
class Rimp2(MiniApp):
    """FOM = 1 / walltime(h), strong scaled (Table V)."""

    app_key = "rimp2"

    def __init__(self, total_flops: float = TOTAL_FLOPS_W90) -> None:
        self.total_flops = total_flops

    # -- functional ----------------------------------------------------------

    def run_functional(self, inp: Rimp2Input | None = None) -> float:
        return rimp2_energy(inp or make_input())

    # -- FOM -------------------------------------------------------------------

    def walltime_s(self, engine: PerfEngine, n_stacks: int = 1) -> float:
        """Strong-scaled walltime: DGEMM time + serial overhead.

        Calls :meth:`build` first; on JLSE-MI250 this raises
        :class:`repro.errors.BuildError` (the paper's missing cells).
        """
        self._check_stacks(engine, n_stacks)
        cal = get_app_calibration("rimp2", engine.system.calibration_key)
        assert isinstance(cal, Rimp2Calibration)
        if cal.build_fails:
            raise BuildError(
                f"{self.fom_spec.name} failed to build on "
                f"{engine.system.display_name} (AMD Fortran compiler)"
            )
        self.build(engine)
        dgemm = engine.gemm_rate(Precision.FP64, n_stacks)
        return self.total_flops / dgemm + cal.serial_seconds

    def fom(self, engine: PerfEngine, n_stacks: int = 1) -> float:
        return 3600.0 / self.walltime_s(engine, n_stacks)
