"""miniBUDE: in-silico molecular docking (Section V-A.1).

"miniBUDE performs virtual screening on the NDM-1 protein by repeatedly
evaluating the energy of a single generation of poses for a number of
iterations, rendering it compute bound. ... an input deck of 2672
ligands, 2672 proteins and 983040 poses. ... The number of interactions
(in Billion Interactions/s) associated with this result is the FOM."

Functional leg: a real BUDE-style pairwise energy kernel — each pose is a
rigid-body transform (rotation + translation) of the ligand; the energy
sums a soft-sphere steric term and a distance-capped electrostatic term
over every ligand-atom x protein-atom pair, vectorised over poses.  All
arithmetic is FP32, like the real mini-app.

FOM leg: miniBUDE is FP32-flop-bound (Table V); the model charges
:data:`FLOPS_PER_INTERACTION` FP32 flops per pose-atom-atom interaction
and applies the system's achieved fraction of FP32 peak (Section V-B:
~45% on Aurora, ~49% on Dawn, ~30% on H100, ~26% on MI250).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register
from ..core.units import GIGA
from ..dtypes import Precision
from ..errors import NotMeasuredError
from ..sim.calibration import MiniBudeCalibration, get_app_calibration
from ..sim.engine import PerfEngine
from .base import MiniApp

__all__ = [
    "Deck",
    "make_deck",
    "pose_transforms",
    "evaluate_poses",
    "MiniBude",
    "FLOPS_PER_INTERACTION",
    "PAPER_POSES",
    "PAPER_ATOMS",
]

#: FP32 flops charged per pose-atom-atom interaction in the FOM model
#: (distance + steric + electrostatic arithmetic; calibrated jointly with
#: the achieved-fraction constants so Table VI and the Section V-B peak
#: percentages are mutually consistent).
FLOPS_PER_INTERACTION = 35.3

#: Paper input deck: 2672 ligand atoms, 2672 protein atoms, 983040 poses.
PAPER_ATOMS = 2672
PAPER_POSES = 983_040


@dataclass(frozen=True)
class Deck:
    """A docking input deck."""

    ligand_pos: np.ndarray  # (L, 3) float32
    ligand_charge: np.ndarray  # (L,)
    ligand_radius: np.ndarray  # (L,)
    protein_pos: np.ndarray  # (P, 3)
    protein_charge: np.ndarray  # (P,)
    protein_radius: np.ndarray  # (P,)
    poses: np.ndarray  # (N, 6): three Euler angles + translation

    @property
    def n_interactions(self) -> int:
        return (
            self.poses.shape[0]
            * self.ligand_pos.shape[0]
            * self.protein_pos.shape[0]
        )


def make_deck(
    n_ligand: int = 64, n_protein: int = 64, n_poses: int = 128, seed: int = 0
) -> Deck:
    """A synthetic deck with NDM-1-like statistics (charges ~ +-0.5 e,
    van-der-Waals radii ~ 1.2-2.0 A, protein box ~ 30 A)."""
    rng = np.random.default_rng(seed)
    f32 = np.float32
    return Deck(
        ligand_pos=rng.uniform(-4, 4, (n_ligand, 3)).astype(f32),
        ligand_charge=rng.uniform(-0.5, 0.5, n_ligand).astype(f32),
        ligand_radius=rng.uniform(1.2, 2.0, n_ligand).astype(f32),
        protein_pos=rng.uniform(-15, 15, (n_protein, 3)).astype(f32),
        protein_charge=rng.uniform(-0.5, 0.5, n_protein).astype(f32),
        protein_radius=rng.uniform(1.2, 2.0, n_protein).astype(f32),
        poses=np.concatenate(
            [
                rng.uniform(-np.pi, np.pi, (n_poses, 3)),
                rng.uniform(-2, 2, (n_poses, 3)),
            ],
            axis=1,
        ).astype(f32),
    )


def pose_transforms(poses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rotation matrices (N,3,3) and translations (N,3) from Euler poses."""
    poses = np.asarray(poses, dtype=np.float32)
    ax, ay, az = poses[:, 0], poses[:, 1], poses[:, 2]
    cx, sx = np.cos(ax), np.sin(ax)
    cy, sy = np.cos(ay), np.sin(ay)
    cz, sz = np.cos(az), np.sin(az)
    n = poses.shape[0]
    rot = np.empty((n, 3, 3), dtype=np.float32)
    # R = Rz @ Ry @ Rx
    rot[:, 0, 0] = cz * cy
    rot[:, 0, 1] = cz * sy * sx - sz * cx
    rot[:, 0, 2] = cz * sy * cx + sz * sx
    rot[:, 1, 0] = sz * cy
    rot[:, 1, 1] = sz * sy * sx + cz * cx
    rot[:, 1, 2] = sz * sy * cx - cz * sx
    rot[:, 2, 0] = -sy
    rot[:, 2, 1] = cy * sx
    rot[:, 2, 2] = cy * cx
    return rot, poses[:, 3:6]


def evaluate_poses(
    deck: Deck, pose_block: slice | None = None
) -> np.ndarray:
    """BUDE-style energies for each pose (FP32).

    Energy per ligand-protein atom pair at distance r:

    * steric (soft sphere): ``k_s * max(0, (ra + rb) - r)^2``
    * electrostatic (capped Coulomb): ``k_e * qa*qb * max(0, 1 - r/rc)``
    """
    poses = deck.poses if pose_block is None else deck.poses[pose_block]
    rot, trans = pose_transforms(poses)
    # Transform ligand atoms per pose: (N, L, 3).
    lig = np.einsum("nij,lj->nli", rot, deck.ligand_pos) + trans[:, None, :]
    # Pairwise distances (N, L, P).
    diff = lig[:, :, None, :] - deck.protein_pos[None, None, :, :]
    r = np.sqrt(np.sum(diff * diff, axis=-1, dtype=np.float32))
    sigma = (
        deck.ligand_radius[None, :, None] + deck.protein_radius[None, None, :]
    )
    overlap = np.maximum(sigma - r, 0.0).astype(np.float32)
    steric = 100.0 * overlap * overlap
    qq = deck.ligand_charge[None, :, None] * deck.protein_charge[None, None, :]
    cutoff = np.float32(8.0)
    elec = 332.0 * qq * np.maximum(1.0 - r / cutoff, 0.0)
    return np.sum(steric + elec, axis=(1, 2), dtype=np.float32)


@register(
    name="minibude",
    category="miniapp",
    programming_model="SYCL, HIP, CUDA",
    description="BUDE virtual-screening energy evaluation (FP32 bound)",
)
class MiniBude(MiniApp):
    """FOM = Billion interactions / second (Table V)."""

    app_key = "minibude"

    def __init__(
        self, n_poses: int = PAPER_POSES, n_atoms: int = PAPER_ATOMS
    ) -> None:
        self.n_poses = n_poses
        self.n_atoms = n_atoms

    # -- functional ----------------------------------------------------------

    def run_functional(self, deck: Deck | None = None) -> np.ndarray:
        """Evaluate a (small) deck for real; returns pose energies."""
        return evaluate_poses(deck or make_deck())

    def best_pose(self, deck: Deck) -> int:
        """Index of the lowest-energy pose (the docking answer)."""
        return int(np.argmin(evaluate_poses(deck)))

    # -- FOM -------------------------------------------------------------------

    def interactions(self) -> float:
        """Total pose-atom-atom interactions per generation."""
        return float(self.n_poses) * self.n_atoms * self.n_atoms

    def fom(self, engine: PerfEngine, n_stacks: int = 1) -> float:
        """GInteractions/s.

        miniBUDE is not an MPI application: the paper measures one Stack
        (or one GPU/GCD) and, for Figure 3, doubles the single-Stack value
        to estimate a full PVC; requesting ``n_stacks > 1`` applies the
        same doubling rule rather than a measured multi-device run.
        """
        self._check_stacks(engine, n_stacks)
        cal = get_app_calibration("minibude", engine.system.calibration_key)
        assert isinstance(cal, MiniBudeCalibration)
        fp32_rate = engine.fma_rate(Precision.FP32, 1) * cal.fp32_fraction
        per_device = fp32_rate / FLOPS_PER_INTERACTION / GIGA
        return per_device * n_stacks

    def achieved_fp32_fraction(self, engine: PerfEngine) -> float:
        """Fraction of FP32 peak achieved (the Section V-B percentages)."""
        cal = get_app_calibration("minibude", engine.system.calibration_key)
        assert isinstance(cal, MiniBudeCalibration)
        return cal.fp32_fraction
