"""miniQMC: real-space quantum Monte Carlo (Section V-A.3).

"miniQMC contains a simplified but computationally accurate
implementation of the real space quantum Monte Carlo algorithms
implemented in the full production QMCPACK application. ... The FOM is
defined as N_walkers x N_elec^3 / T_diffusion and the simulation uses a
2x2x1 cell and 320 walkers per GPU.  The computation is weak scaled with
MPI on every Stack."

Functional leg, mirroring miniQMC's kernel mix:

* a **3D uniform cubic B-spline evaluator** (the einspline substitute) —
  the orbital-evaluation kernel that dominates QMCPACK;
* **walker drift-diffusion** with Metropolis acceptance against a Gaussian
  trial wavefunction in a harmonic trap.  With the variational parameter
  at its exact value the local energy is 3*omega/2 with *zero variance* —
  a sharp correctness oracle the tests exploit.

FOM leg: the paper's key finding for miniQMC is that it is **CPU
congestion bound** at high GPU-per-CPU ratios ("resources on each CPU
socket are shared by more GPUs attached to it on Aurora ... the high GPU
to CPU ratio doesn't benefit miniQMC") — the model is
``t(r) = t_gpu + t_host * r**p`` with ``r`` the ranks sharing a socket,
which reproduces the Aurora-full-node < Dawn-full-node inversion of
Table VI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register
from ..errors import ConfigurationError
from ..runtime.binding import explicit_scaling_binding, ranks_per_socket
from ..sim.calibration import MiniQmcCalibration, get_app_calibration
from ..sim.engine import PerfEngine
from .base import MiniApp

__all__ = [
    "CubicBspline3D",
    "SplineOrbitalSet",
    "HarmonicTrialWavefunction",
    "VmcDriver",
    "DmcDriver",
    "MiniQmc",
    "PAPER_WALKERS_PER_GPU",
    "PAPER_ELECTRONS",
]

#: Paper run configuration: 2x2x1 cell, 320 walkers per GPU.  The NiO
#: 2x2x1 cell used by miniQMC carries 128 electrons.
PAPER_WALKERS_PER_GPU = 320
PAPER_ELECTRONS = 128


class CubicBspline3D:
    """Uniform periodic cubic B-spline interpolation on a 3D grid.

    The einspline-style orbital evaluator: coefficients live on a uniform
    grid; evaluation gathers a 4x4x4 neighbourhood with the cubic
    B-spline basis.  Vectorised over arbitrary batches of points.
    """

    def __init__(self, values: np.ndarray, box: float) -> None:
        """Build spline coefficients that *interpolate* ``values``.

        For a uniform cubic B-spline, interpolation requires solving the
        cyclic tridiagonal system (1/6, 4/6, 1/6) per axis; we do it
        spectrally (the system is circulant for periodic data).
        """
        if values.ndim != 3:
            raise ConfigurationError("values must be a 3D grid")
        if box <= 0:
            raise ConfigurationError("box must be positive")
        self.box = float(box)
        self.n = values.shape[0]
        if values.shape != (self.n, self.n, self.n):
            raise ConfigurationError("grid must be cubic")
        self.coeffs = self._solve_coefficients(np.asarray(values, dtype=np.float64))

    def _solve_coefficients(self, values: np.ndarray) -> np.ndarray:
        n = self.n
        k = np.arange(n)
        # Eigenvalues of the circulant (1/6, 4/6, 1/6) filter.
        eig = (4.0 + 2.0 * np.cos(2.0 * np.pi * k / n)) / 6.0
        out = values
        for axis in range(3):
            spectrum = np.fft.fft(out, axis=axis)
            shape = [1, 1, 1]
            shape[axis] = n
            spectrum /= eig.reshape(shape)
            out = np.real(np.fft.ifft(spectrum, axis=axis))
        return out

    @staticmethod
    def _basis(t: np.ndarray) -> np.ndarray:
        """The four cubic B-spline weights for fractional offsets *t*.

        Returns shape (4, ...) with the classic basis:
        w0=(1-t)^3/6, w1=(3t^3-6t^2+4)/6, w2=(-3t^3+3t^2+3t+1)/6, w3=t^3/6.
        """
        t2 = t * t
        t3 = t2 * t
        return np.stack(
            [
                (1.0 - 3.0 * t + 3.0 * t2 - t3) / 6.0,
                (3.0 * t3 - 6.0 * t2 + 4.0) / 6.0,
                (-3.0 * t3 + 3.0 * t2 + 3.0 * t + 1.0) / 6.0,
                t3 / 6.0,
            ]
        )

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """Spline values at Cartesian *points* of shape (..., 3)."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.shape[-1] != 3:
            raise ConfigurationError("points must end in an xyz axis")
        flat = pts.reshape(-1, 3)
        g = flat / self.box * self.n  # grid units, periodic
        base = np.floor(g).astype(np.int64)
        frac = g - base
        n = self.n
        result = np.zeros(flat.shape[0])
        wx = self._basis(frac[:, 0])
        wy = self._basis(frac[:, 1])
        wz = self._basis(frac[:, 2])
        for i in range(4):
            ix = (base[:, 0] + i - 1) % n
            for j in range(4):
                iy = (base[:, 1] + j - 1) % n
                wij = wx[i] * wy[j]
                for k in range(4):
                    iz = (base[:, 2] + k - 1) % n
                    result += wij * wz[k] * self.coeffs[ix, iy, iz]
        return result.reshape(pts.shape[:-1])


class SplineOrbitalSet:
    """A bank of B-spline orbitals — miniQMC's dominant kernel.

    QMCPACK stores single-particle orbitals as 3D B-spline tables
    (einspline) and evaluates *all* orbitals for each electron move; that
    evaluation is what miniQMC times.  The coefficient grids are stacked
    so one gather serves every orbital (exactly the memory layout trick
    the real einspline multi-spline uses).
    """

    def __init__(self, grids: np.ndarray, box: float) -> None:
        """``grids``: (n_orbitals, n, n, n) sample values to interpolate."""
        if grids.ndim != 4:
            raise ConfigurationError("grids must be (n_orbitals, n, n, n)")
        self.n_orbitals = grids.shape[0]
        self.box = float(box)
        self._splines = [CubicBspline3D(g, box) for g in grids]
        # Stack coefficients: (n, n, n, n_orbitals) for gather locality.
        self.coeffs = np.stack([s.coeffs for s in self._splines], axis=-1)
        self.n = grids.shape[1]

    @classmethod
    def plane_waves(
        cls, n_orbitals: int, grid_n: int = 16, box: float = 2.0
    ) -> "SplineOrbitalSet":
        """Plane-wave-like test orbitals with increasing wavevectors."""
        x = np.arange(grid_n) / grid_n * box
        xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
        grids = np.stack(
            [
                np.cos(2 * np.pi * ((k % 3 + 1) * xx + (k % 2) * yy) / box)
                * np.cos(2 * np.pi * (k // 3) * zz / box)
                for k in range(n_orbitals)
            ]
        )
        return cls(grids, box)

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """All orbitals at all points: (..., n_orbitals).

        One 4x4x4 gather of the stacked coefficients per point serves
        every orbital (the multi-spline optimisation).
        """
        pts = np.asarray(points, dtype=np.float64)
        flat = pts.reshape(-1, 3)
        g = flat / self.box * self.n
        base = np.floor(g).astype(np.int64)
        frac = g - base
        wx = CubicBspline3D._basis(frac[:, 0])
        wy = CubicBspline3D._basis(frac[:, 1])
        wz = CubicBspline3D._basis(frac[:, 2])
        n = self.n
        out = np.zeros((flat.shape[0], self.n_orbitals))
        for i in range(4):
            ix = (base[:, 0] + i - 1) % n
            for j in range(4):
                iy = (base[:, 1] + j - 1) % n
                wij = wx[i] * wy[j]
                for k in range(4):
                    iz = (base[:, 2] + k - 1) % n
                    out += (wij * wz[k])[:, None] * self.coeffs[ix, iy, iz]
        return out.reshape(*pts.shape[:-1], self.n_orbitals)

    def evaluate_single(self, orbital: int, points: np.ndarray) -> np.ndarray:
        """One orbital via its standalone spline (for cross-checking)."""
        return self._splines[orbital].evaluate(points)


@dataclass(frozen=True)
class HarmonicTrialWavefunction:
    """Gaussian trial state ``psi = exp(-alpha sum_i r_i^2 / 2)`` for
    independent electrons in an isotropic harmonic trap ``V = omega^2 r^2/2``
    (hbar = m = 1)."""

    alpha: float
    omega: float = 1.0

    def log_psi(self, r: np.ndarray) -> np.ndarray:
        """log |psi| for walker configurations (..., N_elec, 3)."""
        return -0.5 * self.alpha * np.sum(r * r, axis=(-2, -1))

    def local_energy(self, r: np.ndarray) -> np.ndarray:
        """E_L per walker.

        ``E_L = N * 3*alpha/2 + (omega^2 - alpha^2)/2 * sum r^2``;
        at ``alpha == omega`` this is exactly ``N * 3*omega/2`` for every
        configuration (zero variance).
        """
        n_elec = r.shape[-2]
        r2 = np.sum(r * r, axis=(-2, -1))
        return 1.5 * self.alpha * n_elec + 0.5 * (
            self.omega**2 - self.alpha**2
        ) * r2

    def drift(self, r: np.ndarray) -> np.ndarray:
        """Quantum drift velocity ``grad log psi = -alpha r``."""
        return -self.alpha * r


class VmcDriver:
    """Variational Monte Carlo over a population of walkers."""

    def __init__(
        self,
        wavefunction: HarmonicTrialWavefunction,
        n_walkers: int,
        n_electrons: int,
        timestep: float = 0.3,
        seed: int = 0,
    ) -> None:
        if n_walkers < 1 or n_electrons < 1:
            raise ConfigurationError("need at least one walker and electron")
        self.psi = wavefunction
        self.rng = np.random.default_rng(seed)
        self.timestep = timestep
        self.r = self.rng.standard_normal((n_walkers, n_electrons, 3)) / np.sqrt(
            wavefunction.alpha
        )
        self.accept_count = 0
        self.move_count = 0

    def step(self) -> np.ndarray:
        """One drift-diffusion Metropolis sweep; returns E_L per walker."""
        tau = self.timestep
        old = self.r
        proposal = (
            old
            + tau * self.psi.drift(old)
            + np.sqrt(tau) * self.rng.standard_normal(old.shape)
        )
        # Metropolis-Hastings with the drift-diffusion proposal density.
        log_ratio = 2.0 * (self.psi.log_psi(proposal) - self.psi.log_psi(old))
        fwd = proposal - old - tau * self.psi.drift(old)
        rev = old - proposal - tau * self.psi.drift(proposal)
        log_g = (
            np.sum(fwd * fwd, axis=(-2, -1)) - np.sum(rev * rev, axis=(-2, -1))
        ) / (2.0 * tau)
        accept = np.log(self.rng.uniform(size=log_ratio.shape)) < (
            log_ratio + log_g
        )
        self.r = np.where(accept[:, None, None], proposal, old)
        self.accept_count += int(np.count_nonzero(accept))
        self.move_count += accept.size
        return self.psi.local_energy(self.r)

    def run(self, n_steps: int, warmup: int = 10) -> tuple[float, float]:
        """Returns (mean local energy, standard error)."""
        for _ in range(warmup):
            self.step()
        samples = np.concatenate([self.step() for _ in range(n_steps)])
        return float(samples.mean()), float(
            samples.std(ddof=1) / np.sqrt(samples.size)
        )

    @property
    def acceptance_ratio(self) -> float:
        return self.accept_count / max(self.move_count, 1)


class DmcDriver:
    """Diffusion Monte Carlo with importance sampling and branching.

    The "diffusion" of the paper's ``T_diffusion``: walkers drift-diffuse
    with the trial wavefunction's quantum force and carry branching
    weights ``exp(-tau (E_L - E_T))``; stochastic reconfiguration keeps
    the population near its target.  For the harmonic trap the projected
    ground-state energy is ``1.5 * N * omega`` regardless of the trial
    alpha — the property the tests exploit (VMC with a bad alpha is
    biased; DMC is not, up to timestep error).
    """

    def __init__(
        self,
        wavefunction: HarmonicTrialWavefunction,
        n_walkers: int,
        n_electrons: int,
        timestep: float = 0.02,
        seed: int = 0,
    ) -> None:
        if n_walkers < 8:
            raise ConfigurationError("DMC needs a reasonable population")
        self.psi = wavefunction
        self.target_walkers = n_walkers
        self.timestep = timestep
        self.rng = np.random.default_rng(seed)
        self.r = self.rng.standard_normal(
            (n_walkers, n_electrons, 3)
        ) / np.sqrt(wavefunction.alpha)
        self.e_trial = float(np.mean(self.psi.local_energy(self.r)))

    @property
    def population(self) -> int:
        return self.r.shape[0]

    def step(self) -> float:
        """One DMC generation; returns the population-weighted energy."""
        tau = self.timestep
        e_old = self.psi.local_energy(self.r)
        self.r = (
            self.r
            + tau * self.psi.drift(self.r)
            + np.sqrt(tau) * self.rng.standard_normal(self.r.shape)
        )
        e_new = self.psi.local_energy(self.r)
        weights = np.exp(-tau * (0.5 * (e_old + e_new) - self.e_trial))
        energy = float(np.sum(weights * e_new) / np.sum(weights))
        # Stochastic reconfiguration back to the target population.
        p = weights / weights.sum()
        idx = self.rng.choice(self.population, size=self.target_walkers, p=p)
        self.r = self.r[idx]
        # Population-control feedback on the trial energy.
        self.e_trial = energy - 0.1 / tau * np.log(
            weights.mean()
        )
        return energy

    def run(self, n_steps: int, warmup: int = 50) -> tuple[float, float]:
        """(mean projected energy, standard error) over n_steps."""
        for _ in range(warmup):
            self.step()
        samples = np.array([self.step() for _ in range(n_steps)])
        return float(samples.mean()), float(
            samples.std(ddof=1) / np.sqrt(samples.size)
        )


@register(
    name="miniqmc",
    category="miniapp",
    programming_model="OpenMP",
    description="Real-space QMC kernels (compute/BW + CPU congestion bound)",
)
class MiniQmc(MiniApp):
    """FOM = N_w * N_e^3 * 1e-11 / T_diffusion (Table V)."""

    app_key = "miniqmc"

    def __init__(
        self,
        walkers_per_gpu: int = PAPER_WALKERS_PER_GPU,
        n_electrons: int = PAPER_ELECTRONS,
    ) -> None:
        self.walkers_per_gpu = walkers_per_gpu
        self.n_electrons = n_electrons

    # -- functional ----------------------------------------------------------

    def run_functional(
        self, n_walkers: int = 64, n_electrons: int = 8, steps: int = 40
    ) -> tuple[float, float]:
        psi = HarmonicTrialWavefunction(alpha=1.0, omega=1.0)
        driver = VmcDriver(psi, n_walkers, n_electrons)
        return driver.run(steps)

    # -- FOM -------------------------------------------------------------------

    def _ranks_per_socket(self, engine: PerfEngine, n_stacks: int) -> int:
        bindings = explicit_scaling_binding(engine.node, n_stacks)
        return max(ranks_per_socket(bindings, len(engine.node.sockets)))

    def diffusion_time(self, engine: PerfEngine, n_stacks: int = 1) -> float:
        """Per-rank diffusion time in units of the single-rank time."""
        cal = get_app_calibration("miniqmc", engine.system.calibration_key)
        assert isinstance(cal, MiniQmcCalibration)
        r = self._ranks_per_socket(engine, n_stacks)
        return cal.t_gpu + cal.t_host * r**cal.congestion_exponent

    def fom(self, engine: PerfEngine, n_stacks: int = 1) -> float:
        self._check_stacks(engine, n_stacks)
        cal = get_app_calibration("miniqmc", engine.system.calibration_key)
        assert isinstance(cal, MiniQmcCalibration)
        return n_stacks * cal.fom_single / self.diffusion_time(engine, n_stacks)
