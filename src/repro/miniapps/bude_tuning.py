"""miniBUDE launch-parameter autotuning (Section V-A.1).

"This is run with a combination of poses per work-item (ppwi) and
work-group sizes to find the fastest result."  The real mini-app sweeps
``ppwi in {1,2,4,8,16,...}`` x ``wgsize in {32,64,...,1024}`` and keeps
the best; this module reproduces that tuning space over an occupancy/
register-pressure performance model:

* each work-item holds one pose accumulator per ppwi in registers;
  beyond the register budget the kernel spills and throughput collapses;
* larger ppwi amortises the per-pose reload of protein atoms (data reuse
  rises with ppwi), so throughput *rises* until the spill point;
* the work-group size must keep all compute units occupied; too-small
  groups underfill the device, too-large groups quantise poorly.

The sweep produces a realistic ridge with an interior optimum, and the
tuned throughput feeds the same FOM model as :class:`MiniBude`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..dtypes import Precision
from ..sim.engine import PerfEngine
from .minibude import FLOPS_PER_INTERACTION, MiniBude

__all__ = ["TuneResult", "BudeAutotuner", "DEFAULT_PPWI", "DEFAULT_WGSIZES"]

DEFAULT_PPWI: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
DEFAULT_WGSIZES: tuple[int, ...] = (32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True, slots=True)
class TuneResult:
    """One point of the tuning sweep."""

    ppwi: int
    wgsize: int
    ginteractions_per_s: float

    def __str__(self) -> str:
        return (
            f"ppwi={self.ppwi:<3d} wgsize={self.wgsize:<5d} "
            f"{self.ginteractions_per_s:8.1f} GI/s"
        )


class BudeAutotuner:
    """Sweep (ppwi, wgsize) and keep the fastest configuration."""

    #: FP32 registers available per work-item before spilling (PVC's
    #: 128-register partition at 8 hw threads; Section II).
    registers_per_item: int = 128
    #: Registers consumed per pose accumulator (energy + transform reuse).
    registers_per_pose: int = 5
    #: Fixed register overhead of the kernel body.
    register_overhead: int = 24

    def __init__(self, engine: PerfEngine, app: MiniBude | None = None) -> None:
        self.engine = engine
        self.app = app or MiniBude()

    # -- the performance model -------------------------------------------

    def _occupancy(self, wgsize: int) -> float:
        """Fraction of the device kept busy by this work-group size."""
        device = self.engine.device
        n_units = (
            device.spec.active_xe_cores if device.spec is not None else 108
        )
        # Work-groups map to compute units; tiny groups underfill the
        # unit's SIMD width, huge groups quantise the pose pool.
        simd_fill = min(1.0, wgsize / 256.0)
        quantisation = 1.0 - (wgsize / (64.0 * 1024.0))
        # A mild penalty when groups cannot tile the units evenly.
        tiling = 1.0 - 0.02 * ((wgsize // 64) % max(1, n_units) == 0)
        return max(0.05, simd_fill * quantisation * tiling)

    #: Asymptotic fraction of FP32 peak at perfect reuse/occupancy —
    #: BUDE's pose kernel tops out near half of peak even when tuned
    #: (Section V-B: "close to the expected performance (~50% peak)").
    kernel_ceiling: float = 0.58

    def _reuse_factor(self, ppwi: int) -> float:
        """Data-reuse gain: each protein atom load serves ppwi poses."""
        return ppwi / (ppwi + 3.0) * self.kernel_ceiling

    def _spill_factor(self, ppwi: int) -> float:
        """Register-pressure collapse beyond the register budget."""
        needed = self.register_overhead + ppwi * self.registers_per_pose
        if needed <= self.registers_per_item:
            return 1.0
        return (self.registers_per_item / needed) ** 2

    def throughput(self, ppwi: int, wgsize: int) -> float:
        """Modelled GInteractions/s at one launch configuration."""
        if ppwi < 1 or wgsize < 1:
            raise ValueError("ppwi and wgsize must be positive")
        base = (
            self.engine.fma_rate(Precision.FP32, 1)
            / FLOPS_PER_INTERACTION
            / 1e9
        )
        return (
            base
            * self._occupancy(wgsize)
            * self._reuse_factor(ppwi)
            * self._spill_factor(ppwi)
        )

    # -- the sweep -----------------------------------------------------------

    def sweep(
        self,
        ppwi_values: Iterable[int] = DEFAULT_PPWI,
        wgsizes: Iterable[int] = DEFAULT_WGSIZES,
        batch: bool = False,
    ) -> list[TuneResult]:
        """All sweep points, in (ppwi, wgsize) order.

        With ``batch=True`` the grid evaluates vectorized, the same way
        :class:`~repro.sim.batch.BatchEngine` amortizes rate queries:
        each distinct occupancy/reuse/spill factor resolves once
        through the scalar model, then one NumPy outer product covers
        the grid.  Every multiply sees the same float64 operands in the
        same order as :meth:`throughput`, so the results — and hence
        the ranking — are bit-for-bit identical to the scalar sweep.
        """
        if not batch:
            return [
                TuneResult(p, w, self.throughput(p, w))
                for p in ppwi_values
                for w in wgsizes
            ]
        import numpy as np

        p_list = [int(p) for p in ppwi_values]
        w_list = [int(w) for w in wgsizes]
        if any(p < 1 for p in p_list) or any(w < 1 for w in w_list):
            raise ValueError("ppwi and wgsize must be positive")
        base = (
            self.engine.fma_rate(Precision.FP32, 1)
            / FLOPS_PER_INTERACTION
            / 1e9
        )
        occupancy = np.array([self._occupancy(w) for w in w_list])
        reuse = np.array([self._reuse_factor(p) for p in p_list])
        spill = np.array([self._spill_factor(p) for p in p_list])
        # Same association order as throughput():
        # ((base * occ) * reuse) * spill.
        grid = ((base * occupancy)[None, :] * reuse[:, None]) * spill[:, None]
        return [
            TuneResult(p, w, float(grid[i, j]))
            for i, p in enumerate(p_list)
            for j, w in enumerate(w_list)
        ]

    def best(
        self,
        ppwi_values: Iterable[int] = DEFAULT_PPWI,
        wgsizes: Iterable[int] = DEFAULT_WGSIZES,
        batch: bool = False,
    ) -> TuneResult:
        """The paper's protocol: keep the fastest configuration."""
        return max(
            self.sweep(ppwi_values, wgsizes, batch=batch),
            key=lambda r: r.ginteractions_per_s,
        )

    def tuned_fraction_of_peak(self) -> float:
        """Achieved fraction of FP32 peak at the best configuration."""
        best = self.best()
        peak = self.engine.fma_rate(Precision.FP32, 1) / 1e9
        return best.ginteractions_per_s * FLOPS_PER_INTERACTION / peak
