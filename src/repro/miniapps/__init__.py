"""The four mini-apps of the paper's Table V.

Importing this package registers every mini-app in the global registry.
"""

from .base import MiniApp
from .bude_tuning import BudeAutotuner, TuneResult
from .cloverleaf import (
    BENCH_STEPS,
    BYTES_PER_CELL_STEP,
    PAPER_GRID,
    CloverLeaf,
    EulerSolver2D,
    EulerState,
    exchange_halos,
    run_distributed,
    sod_state,
)
from .minibude import (
    FLOPS_PER_INTERACTION,
    PAPER_ATOMS,
    PAPER_POSES,
    Deck,
    MiniBude,
    evaluate_poses,
    make_deck,
    pose_transforms,
)
from .miniqmc import (
    PAPER_ELECTRONS,
    PAPER_WALKERS_PER_GPU,
    CubicBspline3D,
    DmcDriver,
    HarmonicTrialWavefunction,
    MiniQmc,
    SplineOrbitalSet,
    VmcDriver,
)
from .rimp2 import (
    TOTAL_FLOPS_W90,
    Rimp2,
    Rimp2Input,
    make_input,
    rimp2_energy,
    rimp2_energy_reference,
)

__all__ = [
    "MiniApp",
    "BudeAutotuner",
    "TuneResult",
    "run_distributed",
    "BENCH_STEPS",
    "BYTES_PER_CELL_STEP",
    "PAPER_GRID",
    "CloverLeaf",
    "EulerSolver2D",
    "EulerState",
    "exchange_halos",
    "sod_state",
    "FLOPS_PER_INTERACTION",
    "PAPER_ATOMS",
    "PAPER_POSES",
    "Deck",
    "MiniBude",
    "evaluate_poses",
    "make_deck",
    "pose_transforms",
    "PAPER_ELECTRONS",
    "PAPER_WALKERS_PER_GPU",
    "CubicBspline3D",
    "DmcDriver",
    "SplineOrbitalSet",
    "HarmonicTrialWavefunction",
    "MiniQmc",
    "VmcDriver",
    "TOTAL_FLOPS_W90",
    "Rimp2",
    "Rimp2Input",
    "make_input",
    "rimp2_energy",
    "rimp2_energy_reference",
]
