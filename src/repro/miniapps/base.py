"""Mini-app/application base class.

Each entry of the paper's Table V becomes a class with two legs:

* a **functional implementation** — the actual algorithm (docking energy,
  hydrodynamics, QMC, RI-MP2, transport, N-body/SPH) in vectorised NumPy,
  run at test scale and validated for physical correctness;
* a **figure-of-merit model** — the paper-scale workload driven through
  the performance engine and the app calibration, producing the Table VI
  cells and the Figures 2-4 ratios.

``fom(engine, n_stacks)`` returns the FOM at a scope, or raises
:class:`repro.errors.NotMeasuredError` for cells the paper leaves blank
(and :class:`repro.errors.BuildError` where the paper's build failed).
"""

from __future__ import annotations

import abc

from ..core.fom import FOM_SPECS, FomSpec
from ..errors import NotMeasuredError
from ..runtime.toolchain import Binary, toolchain_for
from ..sim.engine import PerfEngine

__all__ = ["MiniApp"]


class MiniApp(abc.ABC):
    """Base class for the four mini-apps and two applications."""

    #: Key into :data:`repro.core.fom.FOM_SPECS` (and the app calibration).
    app_key: str = ""
    #: Set by the @register decorator.
    benchmark_name: str = ""

    @property
    def fom_spec(self) -> FomSpec:
        return FOM_SPECS[self.app_key]

    # -- toolchain ----------------------------------------------------------

    def build(self, engine: PerfEngine) -> Binary:
        """'Compile' the app for the target system.

        Raises :class:`repro.errors.BuildError` where the paper's build
        failed (GAMESS RI-MP2 with the AMD Fortran compiler).
        """
        spec = self.fom_spec
        model = spec.programming_model.split(",")[0].strip().lower()
        if "openmp" in spec.programming_model.lower():
            model = "openmp"
        elif engine.device.arch == "h100":
            model = "cuda"
        elif engine.device.arch == "mi250":
            model = "hip"
        else:
            model = "sycl"
        return toolchain_for(engine.system).build(
            self.fom_spec.name, spec.language, model
        )

    # -- figure of merit ------------------------------------------------------

    @abc.abstractmethod
    def fom(self, engine: PerfEngine, n_stacks: int = 1) -> float:
        """The Table VI figure-of-merit at the given scope."""

    def fom_or_none(self, engine: PerfEngine, n_stacks: int) -> float | None:
        """``fom`` with paper-blank cells mapped to None."""
        try:
            return self.fom(engine, n_stacks)
        except NotMeasuredError:
            return None

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _check_stacks(engine: PerfEngine, n_stacks: int) -> None:
        if not (1 <= n_stacks <= engine.node.n_stacks):
            raise ValueError(
                f"{engine.system.name}: n_stacks must be in "
                f"[1, {engine.node.n_stacks}], got {n_stacks}"
            )
