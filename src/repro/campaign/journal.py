"""The campaign write-ahead journal.

One JSONL file (``journal.jsonl``) records every campaign transition:

* ``campaign-start`` — spec name + digest, fault scenario, seed, and the
  full unit schedule;
* ``unit-start`` / ``unit-done`` / ``unit-failed`` — per-unit lifecycle;
  ``unit-done`` binds the unit's result-store payload by SHA-256 digest;
* ``unit-quarantined`` — a poison unit pulled from the worker pool after
  crashing K consecutive workers, with their exit codes as provenance
  (resume treats it like ``unit-failed``: sticky, never re-run);
* ``resume`` — which units a resumed run skipped, re-ran, or recovered
  from a corrupt tail;
* ``interrupted`` / ``deadline`` — early exits that remain resumable;
* ``campaign-done`` — the final exit code.

Every record carries a ``sha256`` field: the digest of the record's
canonical JSON with that field removed.

Format v2 (this module's writer) appends one fsynced line per record —
O(1) per append — instead of atomically rewriting the whole file
(format v1), which made an n-record campaign pay O(n²) journal bytes.
The price of appending in place is that a crash mid-append can leave a
*torn tail*: a partial last line.  The per-record checksum confines the
damage — :meth:`Journal.load` keeps the longest intact prefix and
reports how many trailing records were dropped — and the first append
after loading a journal whose on-disk bytes don't match the trusted
prefix (torn tail, or a pre-existing foreign file) heals it with one
atomic rewrite before resuming O(1) appends.  The reader accepts both
``"v": 1`` and ``"v": 2`` records, so journals written before the
format change load unchanged.

No record contains wall-clock timestamps or hostnames; replaying the
journal is deterministic, and the byte sequence on disk is a pure
function of the record sequence — which is what lets serial and
parallel campaign runs be compared with ``cmp``.
"""

from __future__ import annotations

import json
import os

from ..errors import CampaignCorruptError
from ..ioutils import (
    atomic_write_text,
    canonical_json,
    fsync_append_text,
    sha256_text,
)

__all__ = ["JournalRecord", "Journal"]

#: Record types the orchestrator writes (documented in docs/campaigns.md).
RECORD_TYPES = (
    "campaign-start",
    "unit-start",
    "unit-done",
    "unit-failed",
    "unit-quarantined",
    "resume",
    "interrupted",
    "deadline",
    "campaign-done",
)

#: Journal format versions the reader accepts.  1 = rewrite-on-append
#: era, 2 = fsync'd append era.  Records are self-describing, so a
#: journal may legally mix versions (an old campaign resumed by a new
#: binary appends v2 records after its v1 prefix).
RECORD_VERSIONS = (1, 2)

#: The version stamped on newly written records.
WRITE_VERSION = 2


class JournalRecord(dict):
    """One journal record (a dict with checksum helpers)."""

    @staticmethod
    def seal(payload: dict) -> "JournalRecord":
        """Attach the integrity checksum to *payload*."""
        body = {k: v for k, v in payload.items() if k != "sha256"}
        rec = JournalRecord(body)
        rec["sha256"] = sha256_text(canonical_json(body))
        return rec

    def intact(self) -> bool:
        body = {k: v for k, v in self.items() if k != "sha256"}
        return self.get("sha256") == sha256_text(canonical_json(body))

    def line(self) -> str:
        """The record's on-disk form: sorted JSON plus newline."""
        return json.dumps(self, sort_keys=True) + "\n"


class Journal:
    """Append-only, checksummed JSONL journal with torn-tail recovery."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._records: list[JournalRecord] = []
        self.dropped_tail = 0
        # Bytes of the on-disk file known to hold exactly the trusted
        # records, in order, fsynced.  ``None`` means the disk state is
        # unknown (fresh Journal, or a loaded file with a corrupt
        # tail): the next append verifies and, if needed, heals the
        # file with one atomic rewrite before going back to O(1)
        # appends.
        self._synced_bytes: int | None = None

    # ------------------------------------------------------------------
    # loading / verification
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, path: str | os.PathLike, strict: bool = False) -> "Journal":
        """Read a journal, keeping the longest intact prefix.

        Any record that fails to parse or fails its checksum ends the
        trusted prefix: it and everything after it are dropped (counted
        in :attr:`dropped_tail`).  With ``strict=True`` a bad record
        raises :class:`CampaignCorruptError` instead — the ``campaign
        verify`` behaviour.
        """
        journal = cls(path)
        if not os.path.exists(journal.path):
            return journal
        with open(journal.path, "r", encoding="utf-8", newline="") as fh:
            text = fh.read()
        trusted_bytes = 0
        clean = True
        for lineno, raw in enumerate(text.splitlines(keepends=True), start=1):
            line = raw.strip()
            if not line:
                trusted_bytes += len(raw.encode("utf-8"))
                continue
            bad: str | None = None
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                bad = "is not valid JSON (torn write?)"
            else:
                rec = JournalRecord(doc)
                if not rec.intact():
                    bad = "fails its sha256 checksum"
                elif rec.get("type") not in RECORD_TYPES:
                    bad = f"has unknown type {rec.get('type')!r}"
                elif rec.get("v") not in RECORD_VERSIONS:
                    bad = f"has unsupported version {rec.get('v')!r}"
            if bad is None and not raw.endswith("\n"):
                # A record that parses but lacks its newline is still a
                # torn append: trusting it would make the next appended
                # line run into it.
                bad = "is missing its trailing newline (torn write?)"
            if bad is not None:
                if strict:
                    raise CampaignCorruptError(
                        f"{journal.path}:{lineno}: record {bad}"
                    )
                journal.dropped_tail = sum(
                    1
                    for l in text.splitlines(keepends=True)[lineno - 1 :]
                    if l.strip()
                )
                clean = False
                break
            journal._records.append(rec)
            trusted_bytes += len(raw.encode("utf-8"))
        if clean:
            journal._synced_bytes = trusted_bytes
        return journal

    @property
    def records(self) -> list[JournalRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def of_type(self, record_type: str) -> list[JournalRecord]:
        return [r for r in self._records if r["type"] == record_type]

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def append(self, record_type: str, **fields) -> JournalRecord:
        """Seal a record and persist it with one fsync'd append.

        When the on-disk file doesn't match the trusted prefix — first
        write to a fresh directory, a recovered corrupt tail, or a
        foreign file squatting on the path — the whole trusted journal
        is first rewritten atomically (the v1 behaviour), after which
        appends are O(1) again.
        """
        if record_type not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type {record_type!r}")
        rec = JournalRecord.seal(
            {"v": WRITE_VERSION, "type": record_type, **fields}
        )
        self._records.append(rec)
        line = rec.line()
        if self._synced_bytes is not None and self._on_disk_bytes() == (
            self._synced_bytes
        ):
            self._synced_bytes += fsync_append_text(self.path, line)
        else:
            self._flush()
        return rec

    def _on_disk_bytes(self) -> int | None:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return None

    def _flush(self) -> None:
        """Atomically rewrite the file from the trusted record list."""
        text = "".join(rec.line() for rec in self._records)
        atomic_write_text(self.path, text)
        self._synced_bytes = len(text.encode("utf-8"))

    # ------------------------------------------------------------------
    # fault injection support
    # ------------------------------------------------------------------

    def truncate_tail(self, keep_bytes_of_last: int = 20) -> None:
        """Tear the last record in half (the ``journal-truncate`` fault).

        Leaves the file ending mid-record, exactly what a power cut
        during a non-atomic append would produce on real storage.
        """
        with open(self.path, "r", encoding="utf-8") as fh:
            text = fh.read()
        lines = text.splitlines(keepends=True)
        if not lines:
            return
        torn = lines[-1][:keep_bytes_of_last]
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write("".join(lines[:-1]) + torn)
        # The disk no longer matches the trusted records; the next
        # append must heal, not extend the torn line.
        self._synced_bytes = None
