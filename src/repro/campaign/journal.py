"""The campaign write-ahead journal.

One JSONL file (``journal.jsonl``) records every campaign transition:

* ``campaign-start`` — spec name + digest, fault scenario, seed, and the
  full unit schedule;
* ``unit-start`` / ``unit-done`` / ``unit-failed`` — per-unit lifecycle;
  ``unit-done`` binds the unit's result-store payload by SHA-256 digest;
* ``resume`` — which units a resumed run skipped, re-ran, or recovered
  from a corrupt tail;
* ``interrupted`` / ``deadline`` — early exits that remain resumable;
* ``campaign-done`` — the final exit code.

Every record carries a ``sha256`` field: the digest of the record's
canonical JSON with that field removed.  The journal is rewritten
atomically (temp file + ``os.replace``) on every append, so a crash at
any instant leaves either the previous or the new journal on disk —
and a *torn* record (simulated by the ``journal-truncate`` scenario, or
produced by genuinely broken storage) is detected by the checksum and
confined to the tail: :meth:`Journal.load` returns the valid prefix and
reports how many trailing records were dropped.

No record contains wall-clock timestamps or hostnames; replaying the
journal is deterministic.
"""

from __future__ import annotations

import json
import os

from ..errors import CampaignCorruptError
from ..ioutils import atomic_write_text, canonical_json, sha256_text

__all__ = ["JournalRecord", "Journal"]

#: Record types the orchestrator writes (documented in docs/campaigns.md).
RECORD_TYPES = (
    "campaign-start",
    "unit-start",
    "unit-done",
    "unit-failed",
    "resume",
    "interrupted",
    "deadline",
    "campaign-done",
)


class JournalRecord(dict):
    """One journal record (a dict with checksum helpers)."""

    @staticmethod
    def seal(payload: dict) -> "JournalRecord":
        """Attach the integrity checksum to *payload*."""
        body = {k: v for k, v in payload.items() if k != "sha256"}
        rec = JournalRecord(body)
        rec["sha256"] = sha256_text(canonical_json(body))
        return rec

    def intact(self) -> bool:
        body = {k: v for k, v in self.items() if k != "sha256"}
        return self.get("sha256") == sha256_text(canonical_json(body))


class Journal:
    """Append-only, checksummed, atomically-written JSONL journal."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._records: list[JournalRecord] = []
        self.dropped_tail = 0

    # ------------------------------------------------------------------
    # loading / verification
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, path: str | os.PathLike, strict: bool = False) -> "Journal":
        """Read a journal, keeping the longest intact prefix.

        Any record that fails to parse or fails its checksum ends the
        trusted prefix: it and everything after it are dropped (counted
        in :attr:`dropped_tail`).  With ``strict=True`` a bad record
        raises :class:`CampaignCorruptError` instead — the ``campaign
        verify`` behaviour.
        """
        journal = cls(path)
        if not os.path.exists(journal.path):
            return journal
        with open(journal.path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            bad: str | None = None
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                bad = "is not valid JSON (torn write?)"
            else:
                rec = JournalRecord(doc)
                if not rec.intact():
                    bad = "fails its sha256 checksum"
                elif rec.get("type") not in RECORD_TYPES:
                    bad = f"has unknown type {rec.get('type')!r}"
            if bad is not None:
                if strict:
                    raise CampaignCorruptError(
                        f"{journal.path}:{lineno}: record {bad}"
                    )
                journal.dropped_tail = sum(
                    1 for l in lines[lineno - 1 :] if l.strip()
                )
                break
            journal._records.append(rec)
        return journal

    @property
    def records(self) -> list[JournalRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def of_type(self, record_type: str) -> list[JournalRecord]:
        return [r for r in self._records if r["type"] == record_type]

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def append(self, record_type: str, **fields) -> JournalRecord:
        """Seal a record and persist the whole journal atomically.

        Rewriting the file on each append keeps the on-disk journal a
        pure function of the trusted record list — after recovering from
        a corrupt tail, the first append also heals the file.
        """
        if record_type not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type {record_type!r}")
        rec = JournalRecord.seal({"v": 1, "type": record_type, **fields})
        self._records.append(rec)
        self._flush()
        return rec

    def _flush(self) -> None:
        text = "".join(
            json.dumps(rec, sort_keys=True) + "\n" for rec in self._records
        )
        atomic_write_text(self.path, text)

    # ------------------------------------------------------------------
    # fault injection support
    # ------------------------------------------------------------------

    def truncate_tail(self, keep_bytes_of_last: int = 20) -> None:
        """Tear the last record in half (the ``journal-truncate`` fault).

        Leaves the file ending mid-record, exactly what a power cut
        during a non-atomic append would produce on real storage.
        """
        with open(self.path, "r", encoding="utf-8") as fh:
            text = fh.read()
        lines = text.splitlines(keepends=True)
        if not lines:
            return
        torn = lines[-1][:keep_bytes_of_last]
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write("".join(lines[:-1]) + torn)
