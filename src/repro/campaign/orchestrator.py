"""The campaign orchestrator: run, resume, status, verify.

Execution protocol (``campaign run``):

1. journal ``campaign-start`` (spec digest, scenario, seed, schedule);
2. for each unit in topological order: journal ``unit-start``, execute,
   persist the payload to the result store, journal ``unit-done`` with
   the payload's SHA-256 digest (or ``unit-failed``);
3. supervisor checks between units: a SIGINT/SIGTERM flag or an
   exhausted campaign deadline journals an ``interrupted``/``deadline``
   record and exits with the resumable code 3; a per-unit watchdog on
   the *simulated* clock demotes over-budget units to FAILED;
4. when every unit is journalled, render the final artifacts and the
   campaign manifest from the store and journal ``campaign-done``.

``campaign resume`` replays the journal (tolerating a corrupt tail),
re-verifies every completed unit's store payload against its journalled
digest, skips verified units, and re-executes only the incomplete or
corrupted ones — then finalises identically, so the artifacts are
byte-identical to an uninterrupted run.

The ``crash-midrun`` / ``journal-truncate`` fault scenarios exercise
exactly this machinery by killing the run after a seeded unit (and
optionally tearing the journal's last record).  They apply to
``campaign run`` only; a resumed campaign does not re-crash.

With ``--jobs N`` the units run under a supervised worker pool
(:mod:`.supervisor`): dead workers respawn up to ``--max-respawns``, a
unit that kills K consecutive workers is journalled as
``unit-quarantined`` (with the worker exit codes as provenance) while
the rest of the DAG continues, and an exhausted respawn budget degrades
to an in-process serial drain instead of failing the run.  The
``worker-kill`` / ``worker-hang`` / ``worker-poison`` / ``io-enospc``
scenarios inject exactly those faults; like the crash scenarios they
apply to the original ``campaign run`` only.
"""

from __future__ import annotations

import contextlib
import os
import signal
import sys
import threading

from ..core.result import CellStatus
from ..errors import CampaignCorruptError, CampaignError, ReproError
from ..exitcodes import ExitCode, status_exit_code
from ..faults.process import (
    WORKER_SCENARIO_NAMES,
    WorkerFaultPlan,
    build_worker_plan,
)
from ..faults.scenarios import (
    CAMPAIGN_SCENARIO_NAMES,
    CampaignFaultPlan,
    SCENARIO_NAMES,
    build_campaign_plan,
)
from ..ioutils import atomic_write_text, set_io_fault_gate
from ..obs.events import EventBus
from ..telemetry.metrics import MetricsRegistry
from .journal import Journal
from .scheduler import DagScheduler, resolve_jobs
from .spec import CampaignSpec, get_spec
from .store import ResultStore
from .units import apply_watchdog, execute_unit, failure_payload

__all__ = ["Orchestrator", "campaign_main"]


def _log(message: str) -> None:
    print(f"campaign: {message}", file=sys.stderr)


def aggregate_metrics(payloads: list[dict]) -> MetricsRegistry:
    """Merge per-unit counter contributions into one registry.

    Every merged sample is attributed to its unit id (a ``unit`` label is
    stamped on if the runner did not already add one) and a unit's prior
    samples are dropped before its payload is merged.  Attribution is
    therefore idempotent: a unit that was executed, crashed, and
    re-executed after resume counts exactly once, no matter how many
    journal generations mention it (the retry/quarantine double-counting
    bugfix).
    """
    registry = MetricsRegistry()
    for payload in payloads:
        registry.drop_label("unit", payload["unit"])
        for name, entry in sorted(payload.get("metrics", {}).items()):
            if entry.get("kind") != "counter":
                continue
            for sample in entry["samples"]:
                labels = {"unit": payload["unit"], **sample["labels"]}
                registry.inc(name, sample["value"], **labels)
    return registry


def _cache_counts(payload: dict) -> tuple[float, float, float]:
    """The unit's sim memo-cache counters (hits, misses, bypasses)."""

    def total(name: str) -> float:
        entry = payload.get("metrics", {}).get(name, {})
        return float(sum(s["value"] for s in entry.get("samples", [])))

    return total("simcache.hit"), total("simcache.miss"), total("simcache.bypass")


class Orchestrator:
    """Drives one campaign directory through run/resume/status/verify."""

    def __init__(
        self,
        directory: str | os.PathLike,
        spec: CampaignSpec | None = None,
        scenario: str | None = None,
        seed: int = 0,
        unit_timeout_s: float | None = None,
        deadline_s: float | None = None,
        campaign_plan: CampaignFaultPlan | None = None,
        profile: bool = False,
        jobs: int | None = None,
        worker_plan: WorkerFaultPlan | None = None,
        max_respawns: int | None = None,
        hang_timeout_s: float | None = None,
        trace: str | None = None,
    ) -> None:
        from ..obs.requests import TRACEPARENT_ENV, parse_traceparent

        self.directory = os.fspath(directory)
        self.spec = spec
        self.scenario = scenario
        self.seed = seed
        self.unit_timeout_s = unit_timeout_s
        self.deadline_s = deadline_s
        self.campaign_plan = campaign_plan
        self.profile = profile
        self.jobs = resolve_jobs(jobs)
        self.worker_plan = worker_plan
        self.max_respawns = max_respawns
        self.hang_timeout_s = hang_timeout_s
        # Trace context: an explicit traceparent (the daemon's) wins;
        # otherwise inherit the ambient env var (a CLI campaign run
        # inside a traced request).  The live stream stamps every
        # record with the trace id; the deterministic stream NEVER
        # carries it (byte-identity across transports must hold).
        ctx = parse_traceparent(
            trace if trace is not None else os.environ.get(TRACEPARENT_ENV)
        )
        self.trace_context = ctx
        self.traceparent = ctx.traceparent if ctx else None
        self.store = ResultStore(os.path.join(self.directory, "store"))
        self.events = EventBus(
            self.directory,
            live_context={"trace_id": ctx.trace_id} if ctx else None,
        )
        self._interrupted = False
        self._payloads: dict[str, dict] = {}
        self._supervision = None

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, "journal.jsonl")

    @property
    def tables_dir(self) -> str:
        return os.path.join(self.directory, "tables")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, "manifest.json")

    # ------------------------------------------------------------------
    # signal supervision
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _supervised(self):
        """Install SIGINT/SIGTERM handlers that make the run resumable."""
        if threading.current_thread() is not threading.main_thread():
            yield
            return

        def handler(signum, frame):  # pragma: no cover - signal timing
            self._interrupted = True
            raise KeyboardInterrupt

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        try:
            yield
        finally:
            for sig, old in previous.items():
                signal.signal(sig, old)

    @contextlib.contextmanager
    def _io_faults(self):
        """Install the worker plan's transient-ENOSPC gate, if any.

        The gate lives in :mod:`repro.ioutils` process state; it fires
        on the orchestrator's own journal/store/table writes (workers
        never write to disk) and the bounded retry there absorbs it, so
        on-disk bytes stay identical to a fault-free run.
        """
        if self.worker_plan is None or not self.worker_plan.enospc:
            yield
            return
        previous = set_io_fault_gate(self.worker_plan.io_gate())
        try:
            yield
        finally:
            set_io_fault_gate(previous)

    # ------------------------------------------------------------------
    # run / resume
    # ------------------------------------------------------------------

    def run(self) -> ExitCode:
        """Start a fresh campaign in an empty directory."""
        if self.spec is None:
            raise CampaignError("campaign run needs a spec")
        if os.path.exists(self.journal_path) and len(Journal.load(self.journal_path)):
            raise CampaignError(
                f"{self.directory} already holds a campaign journal; "
                "use 'campaign resume' to continue it or pick a fresh --dir"
            )
        os.makedirs(self.directory, exist_ok=True)
        with self._io_faults():
            journal = Journal(self.journal_path)
            # Worker fault scenarios are deliberately absent from this
            # record: supervision heals them without a trace, so the
            # journal must stay byte-identical to a fault-free run.
            journal.append(
                "campaign-start",
                spec=self.spec.name,
                spec_digest=self.spec.digest(),
                scenario=self.scenario,
                campaign_scenario=(
                    self.campaign_plan.scenario if self.campaign_plan else None
                ),
                seed=self.seed,
                profile=self.profile,
                units=[u.id for u in self.spec.execution_order()],
            )
            self.events.emit(
                "campaign-start",
                sim_us=0.0,
                spec=self.spec.name,
                spec_digest=self.spec.digest(),
                scenario=self.scenario,
                seed=self.seed,
                units=len(self.spec),
            )
            if self.campaign_plan is not None:
                _log(self.campaign_plan.describe())
            if self.worker_plan is not None:
                _log(self.worker_plan.describe())
                if self.jobs == 1 and self.worker_plan.wants_workers:
                    _log(
                        "note: worker fault scenarios need --jobs > 1; "
                        "serial runs execute in-process and cannot be killed"
                    )
            return self._execute(journal, completed={})

    def run_or_resume(self) -> ExitCode:
        """Idempotent entry: fresh directories run, journalled ones resume.

        The benchmark service routes every campaign request through
        this, keyed by the request's content digest — so a client retry
        after a crash (or a duplicate submission) re-verifies and skips
        completed units instead of double-running them, and an
        uninterrupted prior run costs one journal replay.
        """
        if os.path.exists(self.journal_path) and len(
            Journal.load(self.journal_path)
        ):
            return self.resume()
        return self.run()

    def resume(self) -> ExitCode:
        """Continue an interrupted campaign from its journal."""
        journal = Journal.load(self.journal_path)
        start = journal.of_type("campaign-start")
        if not start:
            raise CampaignError(
                f"{self.directory} holds no campaign to resume "
                "(missing or fully corrupt journal)"
            )
        config = start[0]
        spec = get_spec(config["spec"])
        if spec.digest() != config["spec_digest"]:
            raise CampaignError(
                f"spec {config['spec']!r} changed since the campaign "
                "started (digest mismatch); cannot resume safely"
            )
        self.spec = spec
        self.scenario = config["scenario"]
        self.seed = config["seed"]
        # Profiling is part of the campaign's identity: a resumed unit
        # must re-profile (or not) exactly as the original run would
        # have, or its payload digest cannot match.
        self.profile = bool(config.get("profile", False))
        # The campaign fault scenarios apply to the original run only;
        # resuming must converge, not crash again.
        self.campaign_plan = None
        self.worker_plan = None

        completed: dict[str, str] = {}
        failed: dict[str, str] = {}
        for rec in journal.records:
            if rec["type"] == "unit-done":
                completed[rec["unit"]] = rec["digest"]
            elif rec["type"] in ("unit-failed", "unit-quarantined"):
                # Quarantine is sticky: the unit killed K workers in the
                # original run, so resume must not feed it to the pool
                # again — its stored FAILED payload stands.
                completed[rec["unit"]] = rec["digest"]
                failed[rec["unit"]] = rec.get("error", "")
        corrupt = [
            uid
            for uid, digest in sorted(completed.items())
            if not self.store.verify(uid, digest)
        ]
        for uid in corrupt:
            del completed[uid]
        order = self.spec.execution_order()
        rerun = [u.id for u in order if u.id not in completed]
        if not rerun and journal.of_type("campaign-done") and not journal.dropped_tail:
            _log("campaign already complete; nothing to resume")
            return ExitCode(journal.of_type("campaign-done")[-1]["exit"])
        journal.append(
            "resume",
            skipped=sorted(completed),
            rerun=rerun,
            dropped_records=journal.dropped_tail,
            corrupt_store=corrupt,
        )
        if journal.dropped_tail:
            _log(
                f"recovered from a corrupt journal tail "
                f"({journal.dropped_tail} record(s) dropped)"
            )
        if corrupt:
            _log(
                "store payloads failed their digest check and will be "
                "re-executed: " + ", ".join(corrupt)
            )
        _log(
            f"resuming: {len(completed)} unit(s) verified and skipped, "
            f"{len(rerun)} to run"
        )
        self.events.emit(
            "resume",
            sim_us=1e6
            * sum(
                self._payload(uid, digest).get("simulated_s", 0.0)
                for uid, digest in completed.items()
            ),
            skipped=len(completed),
            rerun=len(rerun),
        )
        return self._execute(journal, completed=completed)

    # ------------------------------------------------------------------

    def _payload(self, unit_id: str, digest: str | None = None) -> dict:
        if unit_id not in self._payloads:
            self._payloads[unit_id] = self.store.get(unit_id, digest)
        return self._payloads[unit_id]

    def _pre_unit_exit(
        self, journal: Journal, unit, simulated_total: float
    ) -> ExitCode | None:
        """The between-unit supervisor checks (shared serial/parallel)."""
        if self._interrupted:
            journal.append("interrupted", before=unit.id)
            self.events.emit(
                "interrupted", sim_us=simulated_total * 1e6, before=unit.id
            )
            _log("interrupted; journal is resumable")
            return ExitCode.INTERRUPTED
        if self.deadline_s is not None and simulated_total >= self.deadline_s:
            journal.append(
                "deadline",
                before=unit.id,
                simulated_s=simulated_total,
                deadline_s=self.deadline_s,
            )
            self.events.emit(
                "deadline",
                sim_us=simulated_total * 1e6,
                before=unit.id,
                simulated_s=simulated_total,
            )
            _log(
                f"campaign deadline of {self.deadline_s:g}s "
                f"(simulated) reached; resumable"
            )
            return ExitCode.INTERRUPTED
        return None

    def _emit_unit_events(
        self,
        unit,
        payload: dict,
        digest: str,
        simulated_total: float,
        quarantined: tuple[int, ...] | None = None,
    ) -> None:
        """Publish one committed unit's deterministic event records.

        Everything here is distilled from the stored payload (itself a
        pure function of the unit's identity) plus the cumulative
        simulated clock, so the emitted bytes are identical however the
        unit was executed — serial, worker pool, or degraded drain.
        """
        sim_us = simulated_total * 1e6
        for incident in payload.get("incidents", []):
            self.events.emit(
                "fault-injected", sim_us=sim_us, unit=unit.id, incident=incident
            )
        hits, misses, bypasses = _cache_counts(payload)
        if hits or misses or bypasses:
            self.events.emit(
                "cache-stats",
                sim_us=sim_us,
                unit=unit.id,
                hits=hits,
                misses=misses,
                bypasses=bypasses,
            )
        if "profile" in payload:
            profile = payload["profile"]
            self.events.emit(
                "profile-attributed",
                sim_us=sim_us,
                unit=unit.id,
                digest=profile["digest"],
                device_us=profile["device_us"],
                kernels=profile["kernels"],
            )
        extra: dict = {}
        if payload.get("error") is not None:
            extra["error"] = payload["error"]
        if quarantined is not None:
            extra["exit_codes"] = list(quarantined)
        self.events.emit(
            "unit-committed",
            sim_us=sim_us,
            unit=unit.id,
            status=payload["status"],
            digest=digest,
            simulated_s=payload.get("simulated_s", 0.0),
            **extra,
        )

    def _injected_crash(self, journal: Journal, unit, idx: int) -> bool:
        """Apply the campaign fault plan's crash point, if this is it."""
        if (
            self.campaign_plan is None
            or self.campaign_plan.crash_after_unit != idx
        ):
            return False
        # Simulated hard crash: no clean shutdown record.
        if self.campaign_plan.truncate_journal:
            journal.truncate_tail()
        _log(
            f"injected crash after unit {unit.id} "
            f"({self.campaign_plan.scenario}); resumable"
        )
        return True

    def _execute(self, journal: Journal, completed: dict[str, str]) -> ExitCode:
        if self.jobs > 1:
            return self._execute_parallel(journal, completed)
        order = self.spec.execution_order()
        simulated_total = sum(
            self._payload(uid, digest).get("simulated_s", 0.0)
            for uid, digest in completed.items()
        )
        self.events.live(
            "run-live",
            jobs=1,
            pid=os.getpid(),
            units=sum(1 for u in order if u.id not in completed),
        )
        with self._supervised():
            for idx, unit in enumerate(order):
                if unit.id in completed:
                    continue
                early = self._pre_unit_exit(journal, unit, simulated_total)
                if early is not None:
                    return early
                journal.append("unit-start", unit=unit.id)
                self.events.live(
                    "unit-dispatched", unit=unit.id, index=0, attempt=1
                )
                try:
                    deps = {d: self._payload(d) for d in unit.deps}
                    payload = execute_unit(
                        unit, self.scenario, self.seed, deps, self.profile
                    )
                except KeyboardInterrupt:
                    journal.append("interrupted", during=unit.id)
                    self.events.emit(
                        "interrupted",
                        sim_us=simulated_total * 1e6,
                        before=unit.id,
                    )
                    _log(f"interrupted during {unit.id}; journal is resumable")
                    return ExitCode.INTERRUPTED
                except ReproError as exc:
                    payload = failure_payload(unit, exc)
                    digest = self.store.put(unit.id, payload)
                    journal.append(
                        "unit-failed",
                        unit=unit.id,
                        digest=digest,
                        status=payload["status"],
                        error=payload["error"],
                    )
                    completed[unit.id] = digest
                    self._payloads[unit.id] = payload
                    self._emit_unit_events(unit, payload, digest, simulated_total)
                    self.events.live(
                        "unit-completed", unit=unit.id, status=payload["status"]
                    )
                    _log(f"{unit.id}: FAILED ({payload['error']})")
                    continue
                watchdog = apply_watchdog(payload, self.unit_timeout_s)
                digest = self.store.put(unit.id, payload)
                extra = {"watchdog": watchdog} if watchdog else {}
                journal.append(
                    "unit-done",
                    unit=unit.id,
                    status=payload["status"],
                    digest=digest,
                    simulated_s=payload["simulated_s"],
                    **extra,
                )
                completed[unit.id] = digest
                self._payloads[unit.id] = payload
                simulated_total += payload["simulated_s"]
                self._emit_unit_events(unit, payload, digest, simulated_total)
                self.events.live(
                    "unit-completed", unit=unit.id, status=payload["status"]
                )
                _log(f"{unit.id}: {payload['status']}")
                if self._injected_crash(journal, unit, idx):
                    return ExitCode.INTERRUPTED
        return self._finalize(journal, completed)

    def _execute_parallel(
        self, journal: Journal, completed: dict[str, str]
    ) -> ExitCode:
        """Commit loop for ``--jobs N``: same journal bytes, N workers.

        The scheduler executes units opportunistically but yields their
        outcomes in topological order, so this loop journals and stores
        the exact record sequence the serial loop would.  The only
        divergence is the moment of execution: ``unit-start`` is
        journalled at *commit* time (the work may already have
        happened), so an interrupt always lands *between* committed
        units (``before=``) rather than inside one (``during=``) —
        either way the journal is a serial-run prefix and resume
        behaves identically.
        """
        order = self.spec.execution_order()
        simulated_total = sum(
            self._payload(uid, digest).get("simulated_s", 0.0)
            for uid, digest in completed.items()
        )
        hang_timeout_s = self.hang_timeout_s
        if (
            hang_timeout_s is None
            and self.worker_plan is not None
            and self.worker_plan.hangs
        ):
            # An injected hang must be detected promptly or the chaos
            # suite would wait out the production default.
            hang_timeout_s = 2.0
        scheduler = DagScheduler(
            self.spec,
            scenario=self.scenario,
            seed=self.seed,
            profile=self.profile,
            jobs=self.jobs,
            unit_timeout_s=self.unit_timeout_s,
            preloaded={uid: self._payload(uid) for uid in completed},
            max_respawns=self.max_respawns,
            hang_timeout_s=hang_timeout_s,
            worker_faults=self.worker_plan,
            log=_log,
            events=self.events,
            traceparent=self.traceparent,
        )
        self._supervision = scheduler.stats
        _log(
            f"parallel execution: {len(scheduler.pending)} unit(s) across "
            f"{min(self.jobs, len(scheduler.pending))} worker(s), "
            f"{len(self.spec.waves())} wave(s)"
        )
        self.events.live(
            "run-live",
            jobs=self.jobs,
            pid=os.getpid(),
            units=len(scheduler.pending),
        )
        stream = scheduler.outcomes()
        try:
            with self._supervised():
                for idx, unit in enumerate(order):
                    if unit.id in completed:
                        continue
                    early = self._pre_unit_exit(journal, unit, simulated_total)
                    if early is not None:
                        return early
                    try:
                        outcome = next(stream)
                    except KeyboardInterrupt:
                        journal.append("interrupted", before=unit.id)
                        self.events.emit(
                            "interrupted",
                            sim_us=simulated_total * 1e6,
                            before=unit.id,
                        )
                        _log("interrupted; journal is resumable")
                        return ExitCode.INTERRUPTED
                    payload = outcome.payload
                    journal.append("unit-start", unit=unit.id)
                    digest = self.store.put(unit.id, payload)
                    if outcome.quarantined is not None:
                        journal.append(
                            "unit-quarantined",
                            unit=unit.id,
                            digest=digest,
                            status=payload["status"],
                            error=payload["error"],
                            exit_codes=list(outcome.quarantined),
                        )
                        self._emit_unit_events(
                            unit,
                            payload,
                            digest,
                            simulated_total,
                            quarantined=tuple(outcome.quarantined),
                        )
                        _log(f"{unit.id}: QUARANTINED ({payload['error']})")
                    elif outcome.error is not None:
                        journal.append(
                            "unit-failed",
                            unit=unit.id,
                            digest=digest,
                            status=payload["status"],
                            error=payload["error"],
                        )
                        self._emit_unit_events(
                            unit, payload, digest, simulated_total
                        )
                        _log(f"{unit.id}: FAILED ({payload['error']})")
                    else:
                        extra = (
                            {"watchdog": outcome.watchdog}
                            if outcome.watchdog
                            else {}
                        )
                        journal.append(
                            "unit-done",
                            unit=unit.id,
                            status=payload["status"],
                            digest=digest,
                            simulated_s=payload["simulated_s"],
                            **extra,
                        )
                        simulated_total += payload["simulated_s"]
                        self._emit_unit_events(
                            unit, payload, digest, simulated_total
                        )
                        _log(f"{unit.id}: {payload['status']}")
                    completed[unit.id] = digest
                    self._payloads[unit.id] = payload
                    if self._injected_crash(journal, unit, idx):
                        return ExitCode.INTERRUPTED
        finally:
            stream.close()
        return self._finalize(journal, completed)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def _finalize(self, journal: Journal, completed: dict[str, str]) -> ExitCode:
        order = self.spec.execution_order()
        payloads = [self._payload(u.id, completed[u.id]) for u in order]
        os.makedirs(self.tables_dir, exist_ok=True)
        for unit, payload in zip(order, payloads):
            if unit.artifact is None:
                continue
            text = payload.get(
                "text", f"FAILED: {payload.get('error', 'no result')}\n"
            )
            atomic_write_text(os.path.join(self.tables_dir, unit.artifact), text)
        worst = max(
            (CellStatus[p["status"]] for p in payloads), default=CellStatus.OK
        )
        self._write_manifest(order, payloads, completed, worst)
        code = status_exit_code(worst)
        journal.append("campaign-done", exit=int(code))
        self.events.emit(
            "campaign-done",
            sim_us=1e6 * sum(p.get("simulated_s", 0.0) for p in payloads),
            exit=int(code),
        )
        _log(
            f"complete: {len(order)} unit(s), worst status {worst.name}, "
            f"artifacts in {self.tables_dir}"
        )
        return code

    def _write_manifest(self, order, payloads, completed, worst) -> None:
        from ..faults.context import ExecutionContext
        from ..telemetry.manifest import build_manifest, render_manifest

        ctx = ExecutionContext(self.scenario, self.seed)
        ctx.record(worst)
        campaign = {
            "spec": self.spec.name,
            "spec_digest": self.spec.digest(),
            "profile": self.profile,
            "units": [
                {
                    "id": unit.id,
                    "status": payload["status"],
                    "digest": completed[unit.id],
                    "simulated_s": payload.get("simulated_s", 0.0),
                    "incidents": payload.get("incidents", []),
                    **(
                        {"profile_digest": payload["profile"]["digest"]}
                        if "profile" in payload
                        else {}
                    ),
                }
                for unit, payload in zip(order, payloads)
            ],
            "worst_unit_status": worst.name,
            "simulated_total_s": sum(
                p.get("simulated_s", 0.0) for p in payloads
            ),
            "metrics": self._campaign_metrics(payloads).snapshot(),
        }
        stats = self._supervision
        if stats is not None and stats.eventful():
            # Only quarantine/degradation may leave a manifest trace;
            # transparently healed respawns keep the bytes identical to
            # a fault-free serial run.
            campaign["supervision"] = stats.to_doc()
        doc = build_manifest(
            "campaign", ctx, campaign=campaign, systems=self.spec.systems()
        )
        atomic_write_text(self.manifest_path, render_manifest(doc))

    def _campaign_metrics(self, payloads) -> MetricsRegistry:
        """Unit metrics plus the scheduler counters, when eventful."""
        registry = aggregate_metrics(payloads)
        stats = self._supervision
        if stats is not None and stats.eventful():
            registry.inc("worker.respawns", stats.respawns)
            for unit_id in sorted(stats.quarantined):
                registry.inc("unit.quarantined", 1, unit=unit_id)
            if stats.degraded:
                registry.inc("scheduler.degraded", 1)
        return registry

    # ------------------------------------------------------------------
    # status / verify
    # ------------------------------------------------------------------

    def _load_config(self, journal: Journal) -> dict:
        start = journal.of_type("campaign-start")
        if not start:
            raise CampaignError(
                f"{self.directory} holds no campaign journal"
            )
        return start[0]

    def status(self) -> ExitCode:
        journal = Journal.load(self.journal_path)
        config = self._load_config(journal)
        spec = get_spec(config["spec"])
        state: dict[str, str] = {u.id: "pending" for u in spec.execution_order()}
        quarantined: dict[str, list] = {}
        for rec in journal.records:
            if rec["type"] == "unit-quarantined":
                state[rec["unit"]] = "QUARANTINED"
                quarantined[rec["unit"]] = rec.get("exit_codes", [])
            elif rec["type"] in ("unit-done", "unit-failed"):
                state[rec["unit"]] = rec["status"]
            elif rec["type"] == "unit-start" and state.get(rec["unit"]) == "pending":
                state[rec["unit"]] = "started"
        done = sum(1 for s in state.values() if s not in ("pending", "started"))
        print(f"campaign {config['spec']!r} in {self.directory}")
        print(
            f"  scenario {config['scenario']!r} seed {config['seed']}"
            + (
                f", campaign scenario {config['campaign_scenario']!r}"
                if config.get("campaign_scenario")
                else ""
            )
        )
        for uid, unit_state in state.items():
            provenance = ""
            if uid in quarantined:
                codes = ", ".join(str(c) for c in quarantined[uid])
                provenance = f" (worker exit codes: {codes})"
            print(f"  {uid:24s} {unit_state}{provenance}")
        if quarantined:
            print(
                f"  {len(quarantined)} unit(s) quarantined after repeated "
                "worker crashes; their dependents carry FAILED provenance"
            )
        self._status_workers()
        print(
            f"  {done}/{len(state)} unit(s) complete, "
            f"{len(journal)} journal record(s)"
            + (
                f", {journal.dropped_tail} corrupt record(s) in the tail"
                if journal.dropped_tail
                else ""
            )
        )
        if journal.of_type("campaign-done"):
            print("  campaign complete")
        else:
            print("  campaign incomplete: finish with 'campaign resume'")
        return ExitCode.OK

    def _status_workers(self) -> None:
        """Per-worker heartbeat ages and respawn counts (live stream)."""
        import time

        from ..obs.watch import worker_lanes

        lanes = worker_lanes(self.events.live_records())
        if not lanes:
            return
        now = time.time()
        respawns = max((ln.respawns_used for ln in lanes), default=0)
        print(
            f"  workers: {len(lanes)} lane(s), "
            f"{respawns} respawn(s) used"
        )
        for ln in lanes:
            beat = (
                f"last heartbeat {max(now - ln.last_beat, 0.0):.1f}s ago"
                if ln.last_beat is not None
                else "no heartbeat seen"
            )
            unit = f" on {ln.unit}" if ln.unit else ""
            respawn = (
                f", respawn {ln.respawns_used}" if ln.respawns_used else ""
            )
            print(
                f"    [{ln.index}] {ln.worker:22s} "
                f"{ln.state}{unit} ({beat}{respawn})"
            )

    def verify(self) -> ExitCode:
        """Prove journal + store integrity; 0 complete, 3 partial, 4 corrupt."""
        try:
            journal = Journal.load(self.journal_path, strict=True)
        except CampaignCorruptError as exc:
            print(f"corrupt journal: {exc}")
            return ExitCode.CORRUPT
        config = self._load_config(journal)
        spec = get_spec(config["spec"])
        if spec.digest() != config["spec_digest"]:
            print(f"spec {config['spec']!r} digest mismatch")
            return ExitCode.CORRUPT
        bad: list[str] = []
        completed: dict[str, str] = {}
        for rec in journal.records:
            if rec["type"] in ("unit-done", "unit-failed", "unit-quarantined"):
                completed[rec["unit"]] = rec["digest"]
        for uid, digest in sorted(completed.items()):
            if not self.store.verify(uid, digest):
                bad.append(uid)
        if bad:
            print(
                "corrupt store payload(s): " + ", ".join(bad)
            )
            return ExitCode.CORRUPT
        print(
            f"journal intact ({len(journal)} record(s)); "
            f"{len(completed)}/{len(spec)} unit payload(s) verified"
        )
        if not journal.of_type("campaign-done"):
            print("campaign incomplete (resumable)")
            return ExitCode.INTERRUPTED
        print("campaign complete and verified")
        return ExitCode.OK


# ----------------------------------------------------------------------
# CLI entry
# ----------------------------------------------------------------------

def campaign_main(args) -> int:
    """Dispatch ``pvc-bench campaign <run|resume|status|verify|watch>``."""
    action = args.bench
    if action not in ("run", "resume", "status", "verify", "watch"):
        raise CampaignError(
            f"unknown campaign action {action!r}; "
            "choose from: run, resume, status, verify, watch"
        )
    if action == "watch":
        from ..obs.watch import watch_main

        return watch_main(args)
    if not args.dir:
        raise CampaignError("campaign commands need --dir <directory>")
    if action == "run":
        spec = get_spec(args.spec)
        scenario, plan, worker_plan = args.inject, None, None
        if scenario is not None and scenario in CAMPAIGN_SCENARIO_NAMES:
            plan = build_campaign_plan(scenario, args.seed, len(spec))
            scenario = None
        elif scenario is not None and scenario in WORKER_SCENARIO_NAMES:
            worker_plan = build_worker_plan(
                scenario, args.seed, [u.id for u in spec.execution_order()]
            )
            scenario = None
        elif scenario is not None and scenario not in SCENARIO_NAMES:
            raise CampaignError(
                f"unknown fault scenario {scenario!r}; choose an engine "
                f"scenario ({', '.join(SCENARIO_NAMES)}), a campaign "
                f"scenario ({', '.join(CAMPAIGN_SCENARIO_NAMES)}), or a "
                f"worker scenario ({', '.join(WORKER_SCENARIO_NAMES)})"
            )
        orch = Orchestrator(
            args.dir,
            spec=spec,
            scenario=scenario,
            seed=args.seed,
            unit_timeout_s=args.unit_timeout,
            deadline_s=args.deadline,
            campaign_plan=plan,
            profile=getattr(args, "profile", False),
            jobs=getattr(args, "jobs", None),
            worker_plan=worker_plan,
            max_respawns=getattr(args, "max_respawns", None),
            hang_timeout_s=getattr(args, "hang_timeout", None),
        )
        return int(orch.run())
    orch = Orchestrator(
        args.dir,
        unit_timeout_s=args.unit_timeout,
        deadline_s=args.deadline,
        jobs=getattr(args, "jobs", None),
        max_respawns=getattr(args, "max_respawns", None),
        hang_timeout_s=getattr(args, "hang_timeout", None),
    )
    if action == "resume":
        return int(orch.resume())
    if action == "status":
        return int(orch.status())
    return int(orch.verify())
