"""Multi-process DAG scheduler for campaign units.

The campaign spec is a DAG whose measuring units are mutually
independent (a table cell on ``aurora`` never reads a cell from
``dawn``), so the orchestrator can fan them out to a pool of worker
processes.  Determinism — the whole point of the campaign subsystem —
is preserved by splitting *execution order* from *commit order*:

* **Execution order** is opportunistic: a unit is submitted to the pool
  the moment every dependency payload is available, and workers finish
  in whatever order the host schedules them.
* **Commit order** is the spec's topological order: the scheduler
  buffers out-of-order completions and yields
  :class:`UnitOutcome`\\ s strictly in ``spec.execution_order()``
  sequence, so the orchestrator journals, stores, and logs exactly the
  byte sequence a serial run would produce.  A crash at any commit
  point therefore leaves the journal a *prefix* of the serial journal,
  which is what makes ``campaign resume`` indifferent to how the
  interrupted run was parallelised.

Units execute in the worker exactly as they do in-process: a fresh
:class:`~repro.faults.ExecutionContext` and telemetry session per unit,
fault plans and noise that are pure functions of ``(scenario, seed,
system)``.  Per-unit payloads are merged by the orchestrator with the
same content-sorted rules the profiler uses, so N workers produce the
same aggregate metrics as one.

Workers are forked before any queue traffic starts (so the parent is
still effectively single-threaded) and communicate over two
``multiprocessing`` queues; results cross the pipe as plain dicts and
pre-formatted error strings — exceptions never need to pickle.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
from dataclasses import dataclass

from ..errors import CampaignError, ReproError
from .spec import CampaignSpec
from .units import apply_watchdog, execute_unit, failure_payload, format_error

__all__ = ["JOBS_ENV", "DagScheduler", "UnitOutcome", "resolve_jobs"]

#: Environment fallback for ``--jobs`` (CLI flag wins when given).
JOBS_ENV = "CAMPAIGN_JOBS"

#: How often the result wait loop checks worker liveness (seconds).
_POLL_S = 1.0


def resolve_jobs(jobs: int | None) -> int:
    """The worker count from ``--jobs``, ``$CAMPAIGN_JOBS``, or 1."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise CampaignError(
                f"${JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    if jobs < 1:
        raise CampaignError(f"--jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True, slots=True)
class UnitOutcome:
    """One unit's result, ready to commit in topological order."""

    unit: object  # CampaignUnit
    payload: dict
    error: str | None = None  # set -> journal as unit-failed
    watchdog: str | None = None  # set -> demoted by the simulated watchdog


def _worker_loop(task_q, result_q, scenario, seed, profile) -> None:
    """Worker process body: execute units until the ``None`` sentinel.

    Results are ``(unit_id, status, data)`` tuples where *status* is
    ``"ok"`` (data = payload dict), ``"failed"`` (data = formatted
    :class:`ReproError`, journalled as unit-failed) or ``"crashed"``
    (data = formatted unexpected exception, fatal to the campaign —
    exactly as it would be in-process).
    """
    while True:
        task = task_q.get()
        if task is None:
            return
        unit, deps = task
        try:
            payload = execute_unit(unit, scenario, seed, deps, profile)
        except KeyboardInterrupt:  # pragma: no cover - signal timing
            return
        except ReproError as exc:
            result_q.put((unit.id, "failed", format_error(exc)))
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            result_q.put((unit.id, "crashed", format_error(exc)))
        else:
            result_q.put((unit.id, "ok", payload))


class DagScheduler:
    """Fans ready units to a worker pool; yields outcomes in topo order."""

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        scenario: str | None,
        seed: int,
        profile: bool,
        jobs: int,
        unit_timeout_s: float | None = None,
        preloaded: dict[str, dict] | None = None,
    ) -> None:
        self.spec = spec
        self.scenario = scenario
        self.seed = seed
        self.profile = profile
        self.jobs = jobs
        self.unit_timeout_s = unit_timeout_s
        self.preloaded = dict(preloaded or {})
        self.pending = tuple(
            u for u in spec.execution_order() if u.id not in self.preloaded
        )

    # ------------------------------------------------------------------

    def outcomes(self):
        """Generator of :class:`UnitOutcome` in topological order.

        Closing the generator (or letting an exception escape) tears
        the pool down; workers are daemonic, so even an unclean parent
        exit cannot leak them.
        """
        if not self.pending:
            return
        payloads = dict(self.preloaded)
        ctx = multiprocessing.get_context("fork")
        task_q = ctx.Queue()
        result_q = ctx.Queue()
        procs = [
            ctx.Process(
                target=_worker_loop,
                args=(task_q, result_q, self.scenario, self.seed, self.profile),
                daemon=True,
                name=f"campaign-worker-{i}",
            )
            for i in range(min(self.jobs, len(self.pending)))
        ]
        for proc in procs:
            proc.start()
        submitted: set[str] = set()
        ready: dict[str, UnitOutcome] = {}

        def submit_ready() -> None:
            for unit in self.pending:
                if unit.id in submitted:
                    continue
                if all(d in payloads for d in unit.deps):
                    task_q.put((unit, {d: payloads[d] for d in unit.deps}))
                    submitted.add(unit.id)

        try:
            submit_ready()
            for unit in self.pending:
                while unit.id not in ready:
                    uid, status, data = self._next_result(result_q, procs)
                    done = self.spec.unit(uid)
                    if status == "ok":
                        note = apply_watchdog(data, self.unit_timeout_s)
                        outcome = UnitOutcome(done, data, watchdog=note)
                    elif status == "failed":
                        outcome = UnitOutcome(
                            done, failure_payload(done, data), error=data
                        )
                    else:
                        raise CampaignError(
                            f"unit {uid!r} crashed in a worker: {data}"
                        )
                    ready[uid] = outcome
                    payloads[uid] = outcome.payload
                    submit_ready()
                yield ready.pop(unit.id)
        finally:
            self._shutdown(task_q, result_q, procs)

    # ------------------------------------------------------------------

    @staticmethod
    def _next_result(result_q, procs):
        """Block for the next worker result, detecting dead workers."""
        while True:
            try:
                return result_q.get(timeout=_POLL_S)
            except queue.Empty:
                dead = [p for p in procs if not p.is_alive()]
                if dead and result_q.empty():
                    raise CampaignError(
                        f"campaign worker {dead[0].name} died "
                        f"(exit code {dead[0].exitcode}); "
                        "resume the campaign to re-run its units"
                    ) from None

    @staticmethod
    def _shutdown(task_q, result_q, procs) -> None:
        for _ in procs:
            try:
                task_q.put(None)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                break
        for proc in procs:
            proc.join(timeout=2.0)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for q in (task_q, result_q):
            q.close()
            q.cancel_join_thread()
