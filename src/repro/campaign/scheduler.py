"""Multi-process DAG scheduler for campaign units.

The campaign spec is a DAG whose measuring units are mutually
independent (a table cell on ``aurora`` never reads a cell from
``dawn``), so the orchestrator can fan them out to a pool of worker
processes.  Determinism — the whole point of the campaign subsystem —
is preserved by splitting *execution order* from *commit order*:

* **Execution order** is opportunistic: a unit is submitted to the pool
  the moment every dependency payload is available, and workers finish
  in whatever order the host schedules them.
* **Commit order** is the spec's topological order: the scheduler
  buffers out-of-order completions and yields
  :class:`UnitOutcome`\\ s strictly in ``spec.execution_order()``
  sequence, so the orchestrator journals, stores, and logs exactly the
  byte sequence a serial run would produce.  A crash at any commit
  point therefore leaves the journal a *prefix* of the serial journal,
  which is what makes ``campaign resume`` indifferent to how the
  interrupted run was parallelised.

Since PR 6 the pool is *supervised*
(:class:`~repro.campaign.supervisor.WorkerSupervisor`): dead workers
are reaped and respawned up to ``--max-respawns``, their in-flight
units re-enqueued (unit execution is a pure function of identity, so a
re-run reproduces the same bytes); hung workers are SIGKILLed after a
heartbeat deadline; a unit that kills ``poison_crashes`` consecutive
workers is quarantined instead of aborting the DAG; and when the
respawn budget is spent the scheduler degrades to an in-process serial
drain rather than failing the run.  A worker that ships a ``crashed``
status — its unit raised an unexpected non-:class:`ReproError`
exception — still aborts the campaign with
:class:`~repro.errors.WorkerCrashError`: the same bug would be fatal
in-process, and respawning would only re-crash on the same code path.

Units execute in the worker exactly as they do in-process: a fresh
:class:`~repro.faults.ExecutionContext` and telemetry session per unit,
fault plans and noise that are pure functions of ``(scenario, seed,
system)``.  Per-unit payloads are merged by the orchestrator with the
same content-sorted rules the profiler uses, so N workers produce the
same aggregate metrics as one.

Workers are forked before any queue traffic starts (so the parent is
still effectively single-threaded) and communicate over
``multiprocessing`` queues; results cross the pipe as plain dicts and
pre-formatted error strings — exceptions never need to pickle.
Process-level fault plans (:class:`~repro.faults.WorkerFaultPlan`) are
applied *inside* the worker loop only, so the degraded-mode in-process
drain can never SIGKILL the orchestrator.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from ..errors import CampaignError, ReproError, WorkerCrashError
from .spec import CampaignSpec
from .supervisor import (
    DEFAULT_MAX_RESPAWNS,
    HEARTBEAT,
    SupervisionStats,
    WorkerSupervisor,
)
from .units import (
    apply_watchdog,
    execute_unit,
    failure_payload,
    format_error,
    quarantine_payload,
)

__all__ = [
    "JOBS_ENV",
    "DagScheduler",
    "UnitOutcome",
    "resolve_jobs",
    "scheduler_selfcheck",
]

#: Environment fallback for ``--jobs`` (CLI flag wins when given).
JOBS_ENV = "CAMPAIGN_JOBS"

#: Consecutive worker crashes on one unit before quarantine (mirrors
#: :data:`repro.faults.DEFAULT_POISON_CRASHES`; duplicated here so the
#: campaign package does not import the faults package at module scope).
DEFAULT_POISON_CRASHES = 3

#: Ceiling on an injected hang: a hung worker the supervisor somehow
#: never kills (supervision disabled, parent died) exits on its own
#: rather than lingering forever.
_HANG_CAP_S = 120.0


def resolve_jobs(jobs: int | None) -> int:
    """The worker count from ``--jobs``, ``$CAMPAIGN_JOBS``, or 1."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise CampaignError(
                f"${JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    if jobs < 1:
        raise CampaignError(f"--jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True, slots=True)
class UnitOutcome:
    """One unit's result, ready to commit in topological order."""

    unit: object  # CampaignUnit
    payload: dict
    error: str | None = None  # set -> journal as unit-failed
    watchdog: str | None = None  # set -> demoted by the simulated watchdog
    quarantined: tuple[int, ...] | None = None  # worker exit codes


def _worker_loop(
    index, task_q, result_q, scenario, seed, profile, faults,
    traceparent=None,
) -> None:
    """Worker process body: execute units until the ``None`` sentinel.

    On pickup the worker heartbeats ``(HEARTBEAT, index, unit_id)`` so
    the supervisor can tell "still computing" from "hung".  Results are
    ``(unit_id, status, data)`` tuples where *status* is ``"ok"`` (data
    = payload dict), ``"failed"`` (data = formatted
    :class:`ReproError`, journalled as unit-failed) or ``"crashed"``
    (data = formatted unexpected exception, fatal to the campaign —
    exactly as it would be in-process).

    *faults* is an optional :class:`~repro.faults.WorkerFaultPlan`;
    scheduled kills/hangs fire here, keyed on the supervisor-assigned
    attempt number, so "crash twice then succeed" is expressible.

    *traceparent* is the originating service request's trace context;
    exported into this process's environment so anything the unit
    touches (nested tooling, diagnostics) can attribute itself to the
    request that caused the work.  Never influences results — the
    payloads stay byte-identical traced or not.
    """
    if traceparent:
        from ..obs.requests import TRACEPARENT_ENV

        os.environ[TRACEPARENT_ENV] = traceparent
    while True:
        task = task_q.get()
        if task is None:
            return
        unit, deps, attempt = task
        result_q.put((HEARTBEAT, index, unit.id))
        if faults is not None:
            if faults.should_hang(unit.id, attempt):
                deadline = time.monotonic() + _HANG_CAP_S
                while time.monotonic() < deadline:  # pragma: no branch
                    time.sleep(0.1)
                os._exit(1)  # pragma: no cover - supervisor kills us first
            if faults.kill_point(unit.id, attempt) == "start":
                os.kill(os.getpid(), signal.SIGKILL)
        try:
            payload = execute_unit(unit, scenario, seed, deps, profile)
        except KeyboardInterrupt:  # pragma: no cover - signal timing
            return
        except ReproError as exc:
            result_q.put((unit.id, "failed", format_error(exc)))
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            result_q.put((unit.id, "crashed", format_error(exc)))
        else:
            result_q.put((unit.id, "ok", payload))
            if faults is not None and faults.kill_point(unit.id, attempt) == "done":
                # Flush the queue's feeder thread before dying, so the
                # result is on the wire — this is the swallowed-result
                # race the supervisor's grace drain must win.
                result_q.close()
                result_q.join_thread()
                os.kill(os.getpid(), signal.SIGKILL)


class DagScheduler:
    """Fans ready units to a supervised pool; yields outcomes in topo order."""

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        scenario: str | None,
        seed: int,
        profile: bool,
        jobs: int,
        unit_timeout_s: float | None = None,
        preloaded: dict[str, dict] | None = None,
        max_respawns: int | None = None,
        poison_crashes: int | None = None,
        hang_timeout_s: float | None = None,
        worker_faults=None,
        log=None,
        events=None,
        traceparent=None,
    ) -> None:
        self.spec = spec
        self.scenario = scenario
        self.seed = seed
        self.profile = profile
        self.jobs = jobs
        self.unit_timeout_s = unit_timeout_s
        self.preloaded = dict(preloaded or {})
        self.max_respawns = (
            DEFAULT_MAX_RESPAWNS if max_respawns is None else max_respawns
        )
        self.poison_crashes = (
            DEFAULT_POISON_CRASHES if poison_crashes is None else poison_crashes
        )
        self.hang_timeout_s = hang_timeout_s
        self.worker_faults = worker_faults
        self.log = log
        self.events = events  # optional EventBus for live worker telemetry
        self.traceparent = traceparent  # originating request, if any
        self.stats = SupervisionStats()
        self.pending = tuple(
            u for u in spec.execution_order() if u.id not in self.preloaded
        )

    # ------------------------------------------------------------------

    def outcomes(self):
        """Generator of :class:`UnitOutcome` in topological order.

        Closing the generator (or letting an exception escape) tears
        the pool down; workers are daemonic, so even an unclean parent
        exit cannot leak them.
        """
        if not self.pending:
            return
        payloads = dict(self.preloaded)
        supervisor = WorkerSupervisor(
            min(self.jobs, len(self.pending)),
            worker_body=_worker_loop,
            worker_args=(
                self.scenario,
                self.seed,
                self.profile,
                self.worker_faults,
                self.traceparent,
            ),
            max_respawns=self.max_respawns,
            poison_crashes=self.poison_crashes,
            hang_timeout_s=self.hang_timeout_s,
            stats=self.stats,
            events=self.events,
            **({"log": self.log} if self.log is not None else {}),
        )
        supervisor.start()
        submitted: set[str] = set()
        ready: dict[str, UnitOutcome] = {}
        degraded = False

        def run_inline(unit, deps) -> UnitOutcome:
            # Degraded-mode drain: same semantics as a worker, in-process.
            # Fault plans do not fire here — a poison unit must not take
            # the orchestrator down with it.
            try:
                payload = execute_unit(
                    unit, self.scenario, self.seed, deps, self.profile
                )
            except ReproError as exc:
                error = format_error(exc)
                return UnitOutcome(unit, failure_payload(unit, error), error=error)
            except BaseException as exc:  # noqa: BLE001
                raise WorkerCrashError(
                    f"unit {unit.id!r} crashed in a worker: {format_error(exc)}"
                ) from exc
            note = apply_watchdog(payload, self.unit_timeout_s)
            return UnitOutcome(unit, payload, watchdog=note)

        def settle(outcome: UnitOutcome) -> None:
            ready[outcome.unit.id] = outcome
            payloads[outcome.unit.id] = outcome.payload

        def submit_ready() -> None:
            for unit in self.pending:
                if unit.id in submitted:
                    continue
                if all(d in payloads for d in unit.deps):
                    submitted.add(unit.id)
                    deps = {d: payloads[d] for d in unit.deps}
                    if degraded:
                        settle(run_inline(unit, deps))
                    else:
                        supervisor.submit(unit, deps)

        try:
            submit_ready()
            for unit in self.pending:
                while unit.id not in ready:
                    event = supervisor.next_event()
                    if event[0] == "degraded":
                        degraded = True
                        for taken_unit, taken_deps in supervisor.take_pending():
                            settle(run_inline(taken_unit, taken_deps))
                        submit_ready()
                        continue
                    if event[0] == "quarantined":
                        _, poisoned, codes = event
                        payload = quarantine_payload(poisoned, codes)
                        settle(
                            UnitOutcome(
                                poisoned,
                                payload,
                                error=payload["error"],
                                quarantined=tuple(int(c) for c in codes),
                            )
                        )
                        submit_ready()
                        continue
                    _, uid, status, data = event
                    done = self.spec.unit(uid)
                    if status == "ok":
                        note = apply_watchdog(data, self.unit_timeout_s)
                        settle(UnitOutcome(done, data, watchdog=note))
                    elif status == "failed":
                        settle(
                            UnitOutcome(
                                done, failure_payload(done, data), error=data
                            )
                        )
                    else:
                        raise WorkerCrashError(
                            f"unit {uid!r} crashed in a worker: {data}"
                        )
                    submit_ready()
                yield ready.pop(unit.id)
        finally:
            supervisor.shutdown()


# ----------------------------------------------------------------------
# health selfcheck
# ----------------------------------------------------------------------

def scheduler_selfcheck():
    """Supervision invariants for ``pvc-bench health``.

    Runs the smoke spec through a 2-worker pool with a scripted
    SIGKILL, then asserts the run completed, the supervisor respawned
    exactly once, nothing was quarantined, and no child process leaked.
    Lives here (not in :mod:`.supervisor`) because it needs the worker
    loop and a spec — the supervisor module stays import-light.
    """
    from ..faults.process import WorkerFaultPlan
    from ..hw.selfcheck import CheckResult
    from .spec import get_spec

    spec = get_spec("smoke")
    victim = spec.execution_order()[0].id
    plan = WorkerFaultPlan("worker-kill", 0, kills={victim: (1, "start")})
    scheduler = DagScheduler(
        spec,
        scenario=None,
        seed=0,
        profile=False,
        jobs=2,
        worker_faults=plan,
        log=lambda _msg: None,
    )
    checks: list = []
    try:
        outcomes = list(scheduler.outcomes())
    except ReproError as exc:  # pragma: no cover - only on regression
        checks.append(
            CheckResult("scheduler.survives-worker-death", False, str(exc))
        )
        return checks
    checks.append(
        CheckResult(
            "scheduler.survives-worker-death",
            len(outcomes) == len(spec.execution_order()),
            f"{len(outcomes)}/{len(spec.execution_order())} units completed "
            "after an injected worker SIGKILL",
        )
    )
    checks.append(
        CheckResult(
            "scheduler.respawn",
            scheduler.stats.respawns == 1,
            f"supervisor respawned {scheduler.stats.respawns} worker(s) "
            "(expected 1)",
        )
    )
    checks.append(
        CheckResult(
            "scheduler.no-quarantine",
            not scheduler.stats.quarantined and not scheduler.stats.degraded,
            "single crash healed transparently "
            "(no quarantine, no degradation)",
        )
    )
    import multiprocessing

    leaked = [
        p
        for p in multiprocessing.active_children()
        if p.name.startswith("campaign-worker-")
    ]
    checks.append(
        CheckResult(
            "scheduler.no-leaked-children",
            not leaked,
            f"{len(leaked)} campaign worker(s) left alive after shutdown",
        )
    )
    return checks
