"""Executing one campaign unit and serialising its result.

A *measuring* unit runs one system's slice of one paper table inside a
fresh :class:`~repro.faults.ExecutionContext` — its own engines, its own
fault injector (same scenario + seed) and its own telemetry session
attributed to the unit id.  Because the fault plans and noise model are
pure functions of ``(scenario, seed, system)``, every unit's payload is
a pure function of its identity: re-executing a unit after a crash
reproduces the stored bytes exactly, which is what makes resume safe.

A *render* unit never measures: it merges its dependencies' serialised
cells back into a :class:`~repro.core.result.ResultTable` and renders
text byte-identical to the monolithic table drivers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.result import CellStatus, ResultTable
from ..core.units import Quantity
from ..errors import CampaignError
from ..faults.context import ExecutionContext
from ..telemetry import Telemetry

__all__ = [
    "UNIT_SCHEMA",
    "apply_watchdog",
    "execute_unit",
    "format_error",
    "serialize_table",
    "merge_tables",
    "failure_payload",
    "quarantine_payload",
]

UNIT_SCHEMA = "repro.campaign.unit/v1"

#: table key -> (rendered title, driver module attribute, default systems)
TABLE_DRIVERS = {
    "table2": ("Table II", "table_ii"),
    "table3": ("Table III", "table_iii"),
    "table6": ("Table VI", "table_vi"),
}


# ----------------------------------------------------------------------
# table cell (de)serialisation
# ----------------------------------------------------------------------

def serialize_table(table: ResultTable) -> dict:
    """Flatten a table into JSON cells, preserving insertion order."""
    cells: list[list] = []
    for row in table.rows:
        for col in table.columns:
            try:
                q = table.get(row, col)
            except KeyError:
                continue
            status = table.status(row, col)
            cells.append(
                [
                    row,
                    col,
                    None if q is None else q.value,
                    None if q is None else q.unit,
                    status.name,
                    table.note(row, col),
                ]
            )
    return {"title": table.title, "cells": cells}


def merge_tables(title: str, serialized: Sequence[dict]) -> ResultTable:
    """Rebuild one table from per-system cell payloads, in dep order."""
    table = ResultTable(title)
    for doc in serialized:
        for row, col, value, unit, status_name, note in doc["cells"]:
            q = None if value is None else Quantity(value, unit)
            status = CellStatus[status_name]
            table.set(
                row,
                col,
                q,
                status=None if status is CellStatus.OK else status,
                note=note,
            )
    return table


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------

def _simulated_seconds(telemetry: Telemetry) -> float:
    """Simulated wall-clock a unit consumed (from the rep histogram)."""
    if "rep.time_us" not in telemetry.metrics:
        return 0.0
    hist = telemetry.metrics.histogram("rep.time_us")
    return sum(state.sum for _, state in hist.samples()) / 1e6


def _payload(unit, status: CellStatus, **fields) -> dict:
    return {
        "schema": UNIT_SCHEMA,
        "unit": unit.id,
        "kind": unit.kind,
        "status": status.name,
        **fields,
    }


def format_error(error: BaseException | str) -> str:
    """The canonical one-line form an execution error takes in payloads.

    Accepting a pre-formatted string lets worker processes ship the
    error across a pipe (exceptions don't pickle reliably) while the
    stored payload stays byte-identical to the in-process path.
    """
    if isinstance(error, BaseException):
        return f"{type(error).__name__}: {error}"
    return str(error)


def failure_payload(unit, error: BaseException | str) -> dict:
    """The stored record of a unit that could not produce a result."""
    return _payload(
        unit,
        CellStatus.FAILED,
        error=format_error(error),
        simulated_s=0.0,
        metrics={},
        incidents=[],
    )


def quarantine_payload(unit, exit_codes: Sequence[int]) -> dict:
    """The stored record of a poison unit pulled out of the pool.

    Shaped exactly like :func:`failure_payload` (dependents see a FAILED
    dep, the summary counts a FAILED unit) plus the worker exit codes as
    provenance — the only campaign artifact allowed to differ from a
    clean serial run.
    """
    codes = [int(c) for c in exit_codes]
    doc = failure_payload(
        unit,
        f"unit quarantined after crashing {len(codes)} worker(s) "
        f"(exit codes: {', '.join(map(str, codes))})",
    )
    doc["quarantined"] = codes
    return doc


def apply_watchdog(payload: dict, unit_timeout_s: float | None) -> str | None:
    """Demote an over-budget payload to FAILED; returns the note, if any.

    Shared by the serial loop and the parallel scheduler so the
    demotion happens exactly once and — crucially — *before* the
    payload propagates to dependent units, keeping serial and parallel
    runs byte-identical.
    """
    if unit_timeout_s is None or payload["simulated_s"] <= unit_timeout_s:
        return None
    note = (
        f"unit exceeded the {unit_timeout_s:g}s simulated "
        f"watchdog ({payload['simulated_s']:.3g}s)"
    )
    payload["status"] = CellStatus.FAILED.name
    payload["watchdog"] = note
    return note


def _execute_table(
    unit, scenario: str | None, seed: int, profile: bool = False
) -> dict:
    telemetry = Telemetry(unit=unit.id, profile=profile)
    ctx = ExecutionContext(scenario, seed, telemetry=telemetry)
    from ..analysis import tables as table_drivers

    _, driver_name = TABLE_DRIVERS[unit.table]
    driver = getattr(table_drivers, driver_name)
    table = driver(systems=(unit.system,), ctx=ctx)
    status = max(ctx.worst_status, table.worst_status())
    extra: dict = {}
    if telemetry.profiler is not None:
        # Profiled units embed the aggregate digest, not the raw calls:
        # the payload stays small and the digest is what resume must
        # reproduce byte-identically.
        extra["profile"] = telemetry.profiler.summary()
    return _payload(
        unit,
        status,
        table=serialize_table(table),
        incidents=ctx.incident_log(),
        metrics=telemetry.metrics.snapshot(),
        simulated_s=_simulated_seconds(telemetry),
        **extra,
    )


def _dep_status(payloads: Sequence[dict]) -> CellStatus:
    worst = CellStatus.OK
    for doc in payloads:
        worst = max(worst, CellStatus[doc["status"]])
    return worst


def _execute_render(unit, dep_payloads: Sequence[dict]) -> dict:
    missing = [d["unit"] for d in dep_payloads if "table" not in d]
    if missing:
        quarantined = [d["unit"] for d in dep_payloads if d.get("quarantined")]
        provenance = (
            f" ({', '.join(quarantined)} quarantined)" if quarantined else ""
        )
        raise CampaignError(
            f"render unit {unit.id!r} cannot run: dependencies "
            f"{', '.join(missing)} produced no cells{provenance}"
        )
    title, _ = TABLE_DRIVERS[unit.table]
    table = merge_tables(title, [d["table"] for d in dep_payloads])
    return _payload(
        unit,
        _dep_status(dep_payloads),
        text=table.render() + "\n",
        simulated_s=0.0,
        metrics={},
        incidents=[],
    )


def _execute_static(unit) -> dict:
    from ..analysis import table_i, table_iv, table_v

    text = {
        "table1": table_i,
        "table4": lambda: table_iv().render(),
        "table5": table_v,
    }[unit.table]()
    return _payload(
        unit,
        CellStatus.OK,
        text=text + "\n",
        simulated_s=0.0,
        metrics={},
        incidents=[],
    )


def _execute_figure(unit) -> dict:
    from ..analysis import render_figure

    return _payload(
        unit,
        CellStatus.OK,
        text=render_figure(unit.figure) + "\n",
        simulated_s=0.0,
        metrics={},
        incidents=[],
    )


def _execute_summary(unit, dep_payloads: Sequence[dict]) -> dict:
    lines = ["Campaign summary", "-" * 40]
    for doc in dep_payloads:
        lines.append(f"{doc['unit']:24s} {doc['status']}")
    worst = _dep_status(dep_payloads)
    lines += ["-" * 40, f"worst unit status: {worst.name}"]
    return _payload(
        unit,
        worst,
        text="\n".join(lines) + "\n",
        simulated_s=0.0,
        metrics={},
        incidents=[],
    )


def execute_unit(
    unit,
    scenario: str | None,
    seed: int,
    dep_payloads: Mapping[str, dict],
    profile: bool = False,
) -> dict:
    """Run one unit; *dep_payloads* maps dep unit ids to stored payloads."""
    deps = [dep_payloads[d] for d in unit.deps]
    if unit.kind == "table":
        return _execute_table(unit, scenario, seed, profile)
    if unit.kind == "render":
        return _execute_render(unit, deps)
    if unit.kind == "static":
        return _execute_static(unit)
    if unit.kind == "figure":
        return _execute_figure(unit)
    if unit.kind == "summary":
        return _execute_summary(unit, deps)
    raise CampaignError(f"unit {unit.id!r}: unknown kind {unit.kind!r}")
