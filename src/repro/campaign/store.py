"""The integrity-verified result store.

Each completed unit's payload (serialised table cells, rendered text,
metric contributions, provenance) lives in one JSON file under the
campaign directory's ``store/``.  Files are written atomically and the
journal's ``unit-done`` record binds each payload by SHA-256 digest, so
``campaign resume``/``verify`` can prove a stored result is exactly the
one the journal committed — a digest mismatch marks the unit corrupt
and schedules it for re-execution.
"""

from __future__ import annotations

import json
import os
import re

from ..errors import CampaignCorruptError
from ..ioutils import atomic_write_json, sha256_file

__all__ = ["ResultStore"]

_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def _filename(unit_id: str) -> str:
    return _SAFE.sub("_", unit_id) + ".json"


class ResultStore:
    """One campaign's on-disk unit payloads."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = os.fspath(directory)

    def path(self, unit_id: str) -> str:
        return os.path.join(self.directory, _filename(unit_id))

    def put(self, unit_id: str, payload: dict) -> str:
        """Persist *payload* atomically; returns its file digest."""
        os.makedirs(self.directory, exist_ok=True)
        path = self.path(unit_id)
        atomic_write_json(path, payload)
        return sha256_file(path)

    def exists(self, unit_id: str) -> bool:
        return os.path.exists(self.path(unit_id))

    def digest(self, unit_id: str) -> str | None:
        path = self.path(unit_id)
        if not os.path.exists(path):
            return None
        return sha256_file(path)

    def get(self, unit_id: str, expect_digest: str | None = None) -> dict:
        """Load a payload, optionally proving it against a digest."""
        path = self.path(unit_id)
        if not os.path.exists(path):
            raise CampaignCorruptError(
                f"result store has no payload for unit {unit_id!r} ({path})"
            )
        if expect_digest is not None:
            actual = sha256_file(path)
            if actual != expect_digest:
                raise CampaignCorruptError(
                    f"store payload for unit {unit_id!r} fails its digest "
                    f"check (journal committed {expect_digest[:12]}…, file "
                    f"is {actual[:12]}…)"
                )
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except json.JSONDecodeError as exc:
            raise CampaignCorruptError(
                f"store payload for unit {unit_id!r} is not valid JSON: {exc}"
            ) from exc

    def verify(self, unit_id: str, expect_digest: str) -> bool:
        """True when the stored payload matches the journalled digest."""
        return self.digest(unit_id) == expect_digest
