"""Campaign specs: the paper's result set as a deterministic DAG.

A :class:`CampaignSpec` enumerates :class:`CampaignUnit`\\ s — table
cells grouped per system, figure series, static tables — plus *render*
units that merge measured cells into the final paper-style tables and a
*summary* unit that rolls every artifact's status into one page.  Units
are declared in topological order (a unit may only depend on units
declared before it), which both proves the graph is acyclic and fixes
the execution order the orchestrator and the resume path share.

The spec :meth:`~CampaignSpec.digest` pins the campaign's identity: the
journal records it at campaign start and ``resume`` refuses to continue
under a spec whose digest no longer matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CampaignError
from ..ioutils import canonical_json, sha256_text

__all__ = ["CampaignUnit", "CampaignSpec", "SPEC_NAMES", "get_spec"]

#: Unit kinds the executor understands.
UNIT_KINDS = ("table", "render", "static", "figure", "summary")


@dataclass(frozen=True, slots=True)
class CampaignUnit:
    """One schedulable node of the campaign DAG.

    ``kind`` selects the executor: ``table`` measures one system's slice
    of one paper table; ``render`` merges its dependencies' cells into
    the final table text; ``static``/``figure`` produce text directly;
    ``summary`` reports every dependency's status.  ``artifact`` names
    the output file (under the campaign's ``tables/`` directory) the
    unit's text is published to on completion, if any.
    """

    id: str
    kind: str
    table: str | None = None
    system: str | None = None
    figure: str | None = None
    artifact: str | None = None
    deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in UNIT_KINDS:
            raise CampaignError(
                f"unit {self.id!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(UNIT_KINDS)})"
            )

    def to_doc(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "table": self.table,
            "system": self.system,
            "figure": self.figure,
            "artifact": self.artifact,
            "deps": list(self.deps),
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A named, validated campaign DAG."""

    name: str
    units: tuple[CampaignUnit, ...]
    _index: dict[str, CampaignUnit] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        seen: dict[str, CampaignUnit] = {}
        for unit in self.units:
            if unit.id in seen:
                raise CampaignError(f"duplicate unit id {unit.id!r}")
            for dep in unit.deps:
                if dep not in seen:
                    raise CampaignError(
                        f"unit {unit.id!r} depends on {dep!r}, which is not "
                        "declared before it (cycle or missing unit)"
                    )
            seen[unit.id] = unit
        self._index.update(seen)

    def __len__(self) -> int:
        return len(self.units)

    def unit(self, unit_id: str) -> CampaignUnit:
        try:
            return self._index[unit_id]
        except KeyError:
            raise CampaignError(
                f"spec {self.name!r} has no unit {unit_id!r}"
            ) from None

    def execution_order(self) -> tuple[CampaignUnit, ...]:
        """Topological execution order (the declaration order)."""
        return self.units

    def waves(self) -> tuple[tuple[CampaignUnit, ...], ...]:
        """Topological partition into waves of independent units.

        Wave *k* holds every unit whose longest dependency chain has
        length *k*; all units within a wave may execute concurrently.
        The partition bounds the campaign's critical path (number of
        waves) and its maximum useful parallelism (widest wave).
        """
        depth: dict[str, int] = {}
        for unit in self.units:
            depth[unit.id] = 1 + max(
                (depth[d] for d in unit.deps), default=-1
            )
        n_waves = 1 + max(depth.values(), default=-1)
        waves: list[list[CampaignUnit]] = [[] for _ in range(n_waves)]
        for unit in self.units:
            waves[depth[unit.id]].append(unit)
        return tuple(tuple(w) for w in waves)

    def systems(self) -> list[str]:
        """Every system any measuring unit touches, sorted."""
        return sorted({u.system for u in self.units if u.system is not None})

    def to_doc(self) -> dict:
        return {
            "schema": "repro.campaign.spec/v1",
            "name": self.name,
            "units": [u.to_doc() for u in self.units],
        }

    def digest(self) -> str:
        """Content digest pinning the campaign's identity across runs."""
        return sha256_text(canonical_json(self.to_doc()))


# ----------------------------------------------------------------------
# named specs
# ----------------------------------------------------------------------

#: (table key, builder table, systems) for the measured tables.
_MEASURED_TABLES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("table2", ("aurora", "dawn")),
    ("table3", ("aurora", "dawn")),
    ("table6", ("aurora", "dawn", "jlse-h100", "jlse-mi250")),
)

_STATIC_TABLES = ("table1", "table4", "table5")
_FIGURES = ("fig1", "fig2", "fig3", "fig4")


def _measured_units(
    table: str, systems: tuple[str, ...]
) -> list[CampaignUnit]:
    measures = [
        CampaignUnit(
            id=f"{table}:{system}", kind="table", table=table, system=system
        )
        for system in systems
    ]
    render = CampaignUnit(
        id=f"{table}:render",
        kind="render",
        table=table,
        artifact=f"{table}.txt",
        deps=tuple(u.id for u in measures),
    )
    return measures + [render]


def _summary_unit(units: list[CampaignUnit]) -> CampaignUnit:
    published = tuple(u.id for u in units if u.artifact is not None)
    return CampaignUnit(
        id="campaign:summary",
        kind="summary",
        artifact="summary.txt",
        deps=published,
    )


def paper_spec() -> CampaignSpec:
    """The full campaign: every table and figure the paper reports."""
    units: list[CampaignUnit] = []
    for table, systems in _MEASURED_TABLES:
        units.extend(_measured_units(table, systems))
    for table in _STATIC_TABLES:
        units.append(
            CampaignUnit(
                id=f"{table}:render",
                kind="static",
                table=table,
                artifact=f"{table}.txt",
            )
        )
    for fig in _FIGURES:
        units.append(
            CampaignUnit(
                id=f"{fig}:render",
                kind="figure",
                figure=fig,
                artifact=f"{fig}.txt",
            )
        )
    units.append(_summary_unit(units))
    return CampaignSpec("paper", tuple(units))


def smoke_spec() -> CampaignSpec:
    """A three-minute spec for CI and tests: Table III plus the summary."""
    units = _measured_units("table3", ("aurora", "dawn"))
    units.append(_summary_unit(units))
    return CampaignSpec("smoke", tuple(units))


_SPECS = {"paper": paper_spec, "smoke": smoke_spec}

SPEC_NAMES: tuple[str, ...] = tuple(sorted(_SPECS))


def get_spec(name: str) -> CampaignSpec:
    """Look up a named campaign spec (``paper`` or ``smoke``)."""
    try:
        builder = _SPECS[name.strip().lower()]
    except KeyError:
        raise CampaignError(
            f"unknown campaign spec {name!r}; known: {', '.join(SPEC_NAMES)}"
        ) from None
    return builder()
