"""Worker supervision for the campaign DAG scheduler.

The PR 5 scheduler treated a dead worker as fatal: the run aborted with
a ``CampaignError`` and the operator resumed by hand.  For the
benchmark-as-a-service north star that is exactly backwards — at scale,
process death is the *common* case ("Scaling MPI Applications on
Aurora"), so the pool must heal itself.  :class:`WorkerSupervisor`
implements the healing loop:

* **Exact in-flight accounting.**  Each worker gets its own task queue
  and holds at most one unit, so when it dies the supervisor knows
  precisely which unit was in flight — nothing is lost, nothing is
  double-committed.  Before declaring that unit crashed, the result
  queue is drained with a short grace period: a worker killed *after*
  flushing its result (the classic swallowed-result race) contributes
  its outcome instead of a spurious retry.
* **Respawn with a budget.**  Dead workers are reaped (joined — no
  zombies), their exit codes recorded, and replacements forked while
  the respawn budget lasts.  The re-enqueued unit runs with an
  incremented attempt number, which is how deterministic fault plans
  express "crash twice, then succeed".
* **Poison-unit quarantine.**  A unit that kills
  ``poison_crashes`` consecutive workers is reported as a
  ``("quarantined", unit, exit_codes)`` event rather than retried
  forever; the scheduler journals it with the worker exit codes as
  provenance and the rest of the DAG continues.
* **Hang detection.**  Workers heartbeat on the result queue when they
  pick up a unit; a worker whose unit outlives ``hang_timeout_s``
  without a beat or result is SIGKILLed and handled exactly like a
  crash.
* **Graceful degradation.**  When the budget is spent and no workers
  remain, the supervisor emits a single ``("degraded",)`` event; the
  scheduler then drains the remaining units serially in-process
  (where process-level fault plans deliberately do not fire).

Everything the supervisor does transparently — respawns, grace drains,
hang kills — leaves the committed journal/store/table bytes identical
to a serial run; only quarantine and degradation leave a visible trace,
and both are deterministic functions of the fault plan.
"""

from __future__ import annotations

import multiprocessing
import queue
import sys
import time
from collections import deque
from dataclasses import dataclass, field

from ..errors import WorkerCrashError

__all__ = [
    "DEFAULT_MAX_RESPAWNS",
    "HEARTBEAT",
    "SupervisionStats",
    "WorkerSupervisor",
]

#: Worker respawns allowed per campaign before the pool degrades.
DEFAULT_MAX_RESPAWNS = 8

#: First element of a heartbeat tuple on the result queue
#: (``(HEARTBEAT, worker_index, unit_id)``), sent when a worker picks a
#: task up; unit ids never collide with it.
HEARTBEAT = "__hb__"

#: Result-queue poll interval; also the cadence of liveness/hang checks.
_POLL_S = 0.05

#: Grace period to drain a dead worker's already-flushed result before
#: declaring its in-flight unit crashed.
_REAP_DRAIN_S = 0.25

#: Join timeout for reaped/terminated workers.
_JOIN_S = 2.0


def _default_log(message: str) -> None:
    print(f"[campaign] {message}", file=sys.stderr, flush=True)


@dataclass
class SupervisionStats:
    """What supervision had to do during one scheduler run.

    Only deterministic facts make it into :meth:`to_doc` (and from
    there the manifest): respawn/hang counts and the quarantine map
    with worker exit codes.  Wall-clock-flavoured details stay out so
    manifests remain byte-stable across runs.
    """

    respawns: int = 0
    crashes: int = 0
    hang_kills: int = 0
    degraded: bool = False
    #: ``(worker_name, exitcode)`` for every worker death observed.
    worker_exits: list[tuple[str, int | None]] = field(default_factory=list)
    #: unit id -> exit codes of the workers it killed (quarantined units).
    quarantined: dict[str, list[int]] = field(default_factory=dict)
    #: unit id -> dispatch attempts (1 for the untroubled path).
    attempts: dict[str, int] = field(default_factory=dict)

    def eventful(self) -> bool:
        """True when supervision left (or should leave) a visible trace."""
        return self.degraded or bool(self.quarantined)

    def to_doc(self) -> dict:
        return {
            "respawns": self.respawns,
            "hang_kills": self.hang_kills,
            "degraded": self.degraded,
            "quarantined": {
                unit_id: list(codes)
                for unit_id, codes in sorted(self.quarantined.items())
            },
        }


class _Worker:
    """One supervised slot: a process, its private task queue, and the
    unit currently in flight (exact in-flight map — at most one)."""

    __slots__ = (
        "index",
        "proc",
        "task_q",
        "unit",
        "deps",
        "last_beat",
        "reaped",
    )

    def __init__(self, index: int, proc, task_q) -> None:
        self.index = index
        self.proc = proc
        self.task_q = task_q
        self.unit = None
        self.deps = None
        self.last_beat: float | None = None
        self.reaped = False

    @property
    def idle(self) -> bool:
        return self.unit is None

    def alive(self) -> bool:
        return not self.reaped and self.proc.is_alive()


class WorkerSupervisor:
    """Runs and heals a pool of campaign workers.

    The caller (the DAG scheduler) feeds ready units with
    :meth:`submit` and pulls events with :meth:`next_event`; the
    supervisor owns dispatch, liveness, respawn, quarantine, and hang
    policy.  ``worker_body`` is the process target — it is passed in
    (rather than imported) so the scheduler module keeps owning the
    loop that tests monkeypatch — and is invoked as
    ``worker_body(index, task_q, result_q, *worker_args)``.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        worker_body,
        worker_args: tuple = (),
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        poison_crashes: int = 3,
        hang_timeout_s: float | None = None,
        stats: SupervisionStats | None = None,
        log=None,
        events=None,
    ) -> None:
        if n_workers < 1:
            raise WorkerCrashError(f"worker pool needs >= 1 worker, got {n_workers}")
        if max_respawns < 0:
            raise WorkerCrashError(f"--max-respawns must be >= 0, got {max_respawns}")
        if poison_crashes < 1:
            raise WorkerCrashError(f"poison threshold must be >= 1, got {poison_crashes}")
        self.n_workers = n_workers
        self.worker_body = worker_body
        self.worker_args = tuple(worker_args)
        self.max_respawns = max_respawns
        self.poison_crashes = poison_crashes
        self.hang_timeout_s = hang_timeout_s
        self.stats = stats if stats is not None else SupervisionStats()
        self.log = log if log is not None else _default_log
        #: Optional :class:`repro.obs.events.EventBus`; everything the
        #: supervisor publishes goes to the wall-clock *live* stream
        #: (spawns, dispatches, heartbeats, deaths, respawns, hangs,
        #: quarantines, degradation) so the deterministic stream stays
        #: byte-identical to a fault-free serial run.
        self.events = events
        self._ctx = multiprocessing.get_context("fork")
        self.result_q = self._ctx.Queue()
        self._workers: list[_Worker] = []
        self._pending: deque = deque()
        self._events: deque = deque()
        self._crash_counts: dict[str, int] = {}
        self._crash_codes: dict[str, list[int]] = {}
        self._spawn_serial = 0
        self._degraded_announced = False

    def _live(self, etype: str, **fields) -> None:
        if self.events is not None:
            self.events.live(etype, **fields)

    # -- pool lifecycle -----------------------------------------------------

    def start(self) -> None:
        for _ in range(self.n_workers):
            self._workers.append(self._spawn())

    def _spawn(self) -> _Worker:
        index = self._spawn_serial
        self._spawn_serial += 1
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=self.worker_body,
            args=(index, task_q, self.result_q) + self.worker_args,
            daemon=True,
            name=f"campaign-worker-{index}",
        )
        proc.start()
        self._live("worker-spawn", worker=proc.name, index=index)
        return _Worker(index, proc, task_q)

    def shutdown(self) -> None:
        """Tear the pool down without leaking children or zombies.

        Deterministic reaping: sentinel + join with timeout, then
        terminate + join, then kill + join — every child is waited on,
        so none is left as a zombie for the test harness to trip over.
        """
        for worker in self._workers:
            if worker.alive():
                try:
                    worker.task_q.put(None)
                except (OSError, ValueError):  # pragma: no cover - teardown race
                    pass
        for worker in self._workers:
            worker.proc.join(timeout=_JOIN_S)
        for worker in self._workers:
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=_JOIN_S)
        for worker in self._workers:
            if worker.proc.is_alive():  # pragma: no cover - stuck in kernel
                worker.proc.kill()
                worker.proc.join(timeout=_JOIN_S)
        for worker in self._workers:
            worker.task_q.close()
            worker.task_q.cancel_join_thread()
        self.result_q.close()
        self.result_q.cancel_join_thread()

    def live_children(self) -> list:
        """Processes still alive (should be empty after :meth:`shutdown`)."""
        return [w.proc for w in self._workers if w.proc.is_alive()]

    # -- work intake --------------------------------------------------------

    def submit(self, unit, deps: dict) -> None:
        """Queue a ready unit for dispatch to the next idle worker."""
        self._pending.append((unit, deps))

    def _requeue(self, unit, deps) -> None:
        # Front of the queue: a re-enqueued unit keeps its place so the
        # commit order (and with it the journal bytes) is unaffected.
        self._pending.appendleft((unit, deps))

    def take_pending(self) -> list:
        """Hand un-dispatched units back (degraded-mode serial drain)."""
        taken = list(self._pending)
        self._pending.clear()
        return taken

    @property
    def has_work(self) -> bool:
        return bool(self._pending) or any(not w.idle for w in self._workers)

    # -- event pump ---------------------------------------------------------

    def next_event(self) -> tuple:
        """Block for the next supervision event.

        Returns one of::

            ("result", unit_id, status, data)   # worker completed a unit
            ("quarantined", unit, exit_codes)   # unit crossed the poison bar
            ("degraded",)                       # pool gone, budget spent

        Transparent healing (respawns, grace drains, hang kills) happens
        inside this call and produces no event.
        """
        while True:
            self._drain_results()
            self._check_hangs()
            self._reap_dead()
            self._dispatch()
            if self._events:
                return self._events.popleft()
            if self._degraded():
                if not self._degraded_announced:
                    self._degraded_announced = True
                    self.stats.degraded = True
                    self.log(
                        "worker pool exhausted "
                        f"(respawn budget {self.max_respawns} spent); "
                        "draining remaining units serially in-process"
                    )
                    self._live("pool-degraded")
                return ("degraded",)
            try:
                item = self.result_q.get(timeout=_POLL_S)
            except queue.Empty:
                continue
            self._handle_item(item)

    def _degraded(self) -> bool:
        if not self.has_work:
            return False
        if any(w.alive() for w in self._workers):
            return False
        return self.stats.respawns >= self.max_respawns

    # -- internals ----------------------------------------------------------

    def _handle_item(self, item) -> None:
        if item[0] == HEARTBEAT:
            _, index, unit_id = item
            for worker in self._workers:
                if worker.index == index:
                    worker.last_beat = time.monotonic()
                    break
            self._live("worker-heartbeat", index=index, unit=unit_id)
            return
        unit_id, status, data = item
        self._live("unit-completed", unit=unit_id, status=status)
        for worker in self._workers:
            if worker.unit is not None and worker.unit.id == unit_id:
                worker.unit = None
                worker.deps = None
                worker.last_beat = None
                break
        # A completed unit wipes its crash history: only *consecutive*
        # crashes poison (a unit that survived a flaky worker is fine).
        self._crash_counts.pop(unit_id, None)
        self._crash_codes.pop(unit_id, None)
        self._events.append(("result", unit_id, status, data))

    def _drain_results(self, deadline_s: float = 0.0) -> None:
        end = time.monotonic() + deadline_s
        while True:
            try:
                item = self.result_q.get_nowait()
            except queue.Empty:
                if deadline_s and time.monotonic() < end:
                    time.sleep(0.01)
                    continue
                return
            self._handle_item(item)

    def _check_hangs(self) -> None:
        if self.hang_timeout_s is None:
            return
        now = time.monotonic()
        for worker in self._workers:
            if worker.idle or not worker.alive() or worker.last_beat is None:
                continue
            if now - worker.last_beat > self.hang_timeout_s:
                self.log(
                    f"worker {worker.proc.name} hung on unit "
                    f"{worker.unit.id!r} (> {self.hang_timeout_s:g}s); killing it"
                )
                self.stats.hang_kills += 1
                self._live(
                    "worker-hang-kill",
                    worker=worker.proc.name,
                    unit=worker.unit.id,
                )
                worker.proc.kill()
                worker.proc.join(timeout=_JOIN_S)

    def _reap_dead(self) -> None:
        for slot, worker in enumerate(self._workers):
            if worker.reaped or worker.proc.is_alive():
                continue
            worker.proc.join(timeout=_JOIN_S)  # no zombies
            worker.reaped = True
            exitcode = worker.proc.exitcode
            self.stats.worker_exits.append((worker.proc.name, exitcode))
            worker.task_q.close()
            worker.task_q.cancel_join_thread()
            if worker.unit is not None:
                # Its result may already be on the wire (killed after
                # flushing): grace-drain before treating it as a crash.
                self._drain_results(_REAP_DRAIN_S)
            self._live(
                "worker-exit",
                worker=worker.proc.name,
                exitcode=exitcode,
                unit=worker.unit.id if worker.unit is not None else None,
            )
            if worker.unit is not None:
                self._record_crash(worker)
            else:
                self.log(
                    f"worker {worker.proc.name} died idle "
                    f"(exit code {exitcode})"
                )
            if self.stats.respawns < self.max_respawns:
                self.stats.respawns += 1
                replacement = self._spawn()
                self.log(
                    f"respawned {replacement.proc.name} "
                    f"({self.stats.respawns}/{self.max_respawns} respawns used)"
                )
                self._live(
                    "worker-respawn",
                    worker=replacement.proc.name,
                    replaces=worker.proc.name,
                    respawns_used=self.stats.respawns,
                )
                self._workers[slot] = replacement

    def _record_crash(self, worker: _Worker) -> None:
        unit, deps = worker.unit, worker.deps
        worker.unit = None
        worker.deps = None
        worker.last_beat = None
        exitcode = worker.proc.exitcode
        self.stats.crashes += 1
        count = self._crash_counts.get(unit.id, 0) + 1
        self._crash_counts[unit.id] = count
        codes = self._crash_codes.setdefault(unit.id, [])
        codes.append(exitcode if exitcode is not None else -1)
        self.log(
            f"worker {worker.proc.name} died (exit code {exitcode}) "
            f"holding unit {unit.id!r} (crash {count}/{self.poison_crashes})"
        )
        if count >= self.poison_crashes:
            self.stats.quarantined[unit.id] = list(codes)
            self._crash_counts.pop(unit.id, None)
            self._crash_codes.pop(unit.id, None)
            self.log(
                f"quarantining unit {unit.id!r} after {count} consecutive "
                f"worker crashes (exit codes: {', '.join(map(str, codes))})"
            )
            self._live("quarantine", unit=unit.id, exit_codes=list(codes))
            self._events.append(("quarantined", unit, tuple(codes)))
        else:
            self._requeue(unit, deps)

    def _dispatch(self) -> None:
        for worker in self._workers:
            if not self._pending:
                return
            if not worker.alive() or not worker.idle:
                continue
            unit, deps = self._pending.popleft()
            attempt = self.stats.attempts.get(unit.id, 0) + 1
            self.stats.attempts[unit.id] = attempt
            worker.unit = unit
            worker.deps = deps
            worker.last_beat = time.monotonic()
            self._live(
                "unit-dispatched",
                unit=unit.id,
                index=worker.index,
                attempt=attempt,
            )
            worker.task_q.put((unit, deps, attempt))
