"""Crash-safe campaign orchestration.

A *campaign* is the paper's full result set — Tables II/III/VI, the
static tables, Figures 1-4 — decomposed into a deterministic DAG of
benchmark units.  The subsystem has four layers:

* :mod:`repro.campaign.spec` — named campaign specs: units, their
  dependencies, and a content digest that pins what "the same campaign"
  means across processes;
* :mod:`repro.campaign.journal` — the write-ahead journal: checksummed
  JSONL records, written atomically, that survive crashes and detect
  torn tails;
* :mod:`repro.campaign.store` — the integrity-verified result store:
  one JSON payload per completed unit, digest-bound to the journal;
* :mod:`repro.campaign.orchestrator` — executes units in topological
  order under a supervisor (per-unit simulated-time watchdog, campaign
  deadline, SIGINT/SIGTERM flush), journals every transition, and on
  ``resume`` re-executes only incomplete or corrupted units.

Determinism contract: a campaign interrupted after any unit and then
resumed produces byte-identical final tables and manifest to an
uninterrupted run with the same seed and scenario.
"""

from .journal import Journal, JournalRecord
from .orchestrator import Orchestrator
from .spec import SPEC_NAMES, CampaignSpec, CampaignUnit, get_spec
from .store import ResultStore

__all__ = [
    "CampaignSpec",
    "CampaignUnit",
    "Journal",
    "JournalRecord",
    "Orchestrator",
    "ResultStore",
    "SPEC_NAMES",
    "get_spec",
]
