"""Crash-safe campaign orchestration.

A *campaign* is the paper's full result set — Tables II/III/VI, the
static tables, Figures 1-4 — decomposed into a deterministic DAG of
benchmark units.  The subsystem has four layers:

* :mod:`repro.campaign.spec` — named campaign specs: units, their
  dependencies, and a content digest that pins what "the same campaign"
  means across processes;
* :mod:`repro.campaign.journal` — the write-ahead journal: checksummed
  JSONL records with O(1) fsync'd appends, torn-tail detection, and
  heal-on-append recovery;
* :mod:`repro.campaign.store` — the integrity-verified result store:
  one JSON payload per completed unit, digest-bound to the journal;
* :mod:`repro.campaign.scheduler` — the ``--jobs N`` multi-process DAG
  scheduler: opportunistic execution across a worker pool, commits
  strictly in topological order;
* :mod:`repro.campaign.supervisor` — the self-healing layer under the
  scheduler: dead-worker detection and respawn (with a budget),
  poison-unit quarantine, heartbeat-based hang kills, and graceful
  degradation to an in-process serial drain;
* :mod:`repro.campaign.orchestrator` — commits units in topological
  order under a supervisor (per-unit simulated-time watchdog, campaign
  deadline, SIGINT/SIGTERM flush), journals every transition, and on
  ``resume`` re-executes only incomplete or corrupted units.

Determinism contract: a campaign interrupted after any unit and then
resumed — serially or with any ``--jobs N`` — produces byte-identical
journal, store, final tables and manifest to an uninterrupted serial
run with the same seed and scenario.  Supervised healing (worker
respawns, hang kills, transient-ENOSPC retries) preserves that
contract; only poison-unit quarantine and degraded mode leave a
(deterministic) trace.
"""

from .journal import Journal, JournalRecord
from .orchestrator import Orchestrator
from .scheduler import DagScheduler, resolve_jobs, scheduler_selfcheck
from .spec import SPEC_NAMES, CampaignSpec, CampaignUnit, get_spec
from .store import ResultStore
from .supervisor import DEFAULT_MAX_RESPAWNS, SupervisionStats, WorkerSupervisor

__all__ = [
    "CampaignSpec",
    "CampaignUnit",
    "DEFAULT_MAX_RESPAWNS",
    "DagScheduler",
    "Journal",
    "JournalRecord",
    "Orchestrator",
    "ResultStore",
    "SPEC_NAMES",
    "SupervisionStats",
    "WorkerSupervisor",
    "get_spec",
    "resolve_jobs",
    "scheduler_selfcheck",
]
