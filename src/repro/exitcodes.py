"""The ``pvc-bench`` exit-code taxonomy.

Every command maps its outcome onto one contract (documented in
``docs/campaigns.md`` and ``docs/fault_injection.md``):

====  ======================  =============================================
code  name                    meaning
====  ======================  =============================================
0     OK                      clean run; every reported number is trusted
1     MEASUREMENT             a measurement-level problem: degraded cells
                              (faults absorbed, provenance footnotes) or a
                              :class:`~repro.errors.MeasurementError`
2     UNHEALTHY               failed cells, topology/configuration errors,
                              or any other fatal :class:`ReproError`
3     INTERRUPTED             the run stopped early (SIGINT/SIGTERM,
                              deadline, simulated crash) but left a valid
                              journal — ``campaign resume`` can finish it
4     CORRUPT                 a journal record or result-store entry failed
                              its integrity check
====  ======================  =============================================

Codes 0-2 deliberately coincide with the pre-existing fault-injection
contract (clean / degraded / failed), so older scripts keep working.

Worker supervision (PR 6) adds no new codes — it folds into the table:

* a *quarantined* unit (journalled ``unit-quarantined`` after crashing
  K consecutive workers) stores a FAILED payload, so a campaign that
  quarantined anything completes with code 2 (UNHEALTHY), exactly as if
  the unit had failed in-process; the DAG still finishes;
* a scheduler that exhausted its respawn budget *degrades* to an
  in-process serial drain and completes with whatever status the units
  earn — degradation itself is reported via the ``scheduler.degraded``
  metric and the manifest's ``supervision`` block, not the exit code;
* transparently healed faults (worker respawns, hang kills, transient
  ENOSPC absorbed by the bounded IO retry) never affect the exit code.
"""

from __future__ import annotations

import enum

from .errors import (
    CampaignCorruptError,
    MeasurementError,
    ReproError,
)

__all__ = ["ExitCode", "classify_error", "status_exit_code"]


class ExitCode(enum.IntEnum):
    """The documented ``pvc-bench`` exit codes."""

    OK = 0
    MEASUREMENT = 1
    UNHEALTHY = 2
    INTERRUPTED = 3
    CORRUPT = 4


def classify_error(exc: BaseException) -> ExitCode:
    """Map an exception onto the exit-code taxonomy.

    ``KeyboardInterrupt`` (and SIGTERM converted to it) is *resumable*:
    journalled state survives, so it maps to :attr:`ExitCode.INTERRUPTED`.
    Integrity failures outrank everything; measurement failures are the
    mildest error class because partial results remain usable.
    """
    if isinstance(exc, CampaignCorruptError):
        return ExitCode.CORRUPT
    if isinstance(exc, KeyboardInterrupt):
        return ExitCode.INTERRUPTED
    if isinstance(exc, MeasurementError):
        return ExitCode.MEASUREMENT
    if isinstance(exc, ReproError):
        return ExitCode.UNHEALTHY
    raise exc


def status_exit_code(worst: "object") -> ExitCode:
    """Exit code for a completed run given its worst cell status.

    Accepts a :class:`~repro.core.result.CellStatus` (an IntEnum whose
    values already mirror codes 0-2).
    """
    return ExitCode(int(worst))
