"""The graceful stdlib HTTP base shared by the daemon and ``obs serve``.

:class:`http.server.ThreadingHTTPServer` hands each connection to a
thread and then forgets about it: with ``daemon_threads = True`` a
``shutdown()`` abandons in-flight requests mid-write, and with
``False`` a single wedged client (a slow-loris holding its socket
open) blocks ``server_close()`` forever.  Both daemons here need the
middle road — finish what can finish, within a bound, then go —
so :class:`GracefulHTTPServer` adds:

* **explicit thread tracking** — handler threads are registered in a
  set (daemonic, so a drain overrun can never hang interpreter exit);
* **a bounded drain** — :meth:`shutdown_gracefully` stops the accept
  loop, then joins live handlers against one deadline shared across
  all of them; stragglers are abandoned (and counted) rather than
  waited on;
* **slow-loris defense** — a per-connection socket timeout
  (:attr:`request_timeout`) propagated onto every handler, so a client
  dribbling bytes is disconnected instead of pinning a thread.
"""

from __future__ import annotations

import threading
import time
from http.server import ThreadingHTTPServer

__all__ = ["GracefulHTTPServer"]

#: Default bound on the shutdown drain (seconds).
DEFAULT_DRAIN_S = 5.0

#: Default per-connection socket timeout (seconds): generous for a
#: local scrape or API call, fatal for a slow-loris.
DEFAULT_REQUEST_TIMEOUT_S = 10.0


class GracefulHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server whose shutdown drains, bounded."""

    #: Deliberate: handler threads must not block interpreter exit if
    #: the drain budget runs out — the drain below is what provides
    #: the orderly path, not thread non-daemonism.
    daemon_threads = True

    #: Seconds a handler may sit in a socket read/write before the
    #: connection is dropped (slow-loris defense).  ``None`` disables.
    request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT_S

    #: socketserver's default listen backlog is 5 — a request storm at
    #: concurrency 32 overflows it and clients see connection resets
    #: before admission control ever gets a say.  Shed in admission
    #: (with a Retry-After), not in the kernel.
    request_queue_size = 128

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._handler_threads: set[threading.Thread] = set()
        self._handler_lock = threading.Lock()
        self._serving = threading.Event()
        self.abandoned_handlers = 0

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        # Track loop liveness: socketserver's shutdown() blocks forever
        # if called on a server whose accept loop never started, so
        # shutdown_gracefully() must know whether to invoke it.
        self._serving.set()
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving.clear()

    # ------------------------------------------------------------------
    # thread tracking
    # ------------------------------------------------------------------

    def process_request(self, request, client_address) -> None:
        """Spawn-and-track (replaces ThreadingMixIn's fire-and-forget)."""
        thread = threading.Thread(
            target=self._handle_tracked,
            args=(request, client_address),
            daemon=self.daemon_threads,
            name=f"http-{self.server_address[1]}",
        )
        with self._handler_lock:
            self._handler_threads.add(thread)
        thread.start()

    def _handle_tracked(self, request, client_address) -> None:
        try:
            if self.request_timeout is not None:
                request.settimeout(self.request_timeout)
            self.finish_request(request, client_address)
        except Exception:  # noqa: BLE001 - socket teardown races
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)
            with self._handler_lock:
                self._handler_threads.discard(threading.current_thread())

    def handle_error(self, request, client_address) -> None:
        # Client disconnects and handler timeouts are routine for a
        # long-running daemon; they must not spray tracebacks.
        pass

    def live_handlers(self) -> int:
        with self._handler_lock:
            return sum(1 for t in self._handler_threads if t.is_alive())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def drain(self, timeout_s: float = DEFAULT_DRAIN_S) -> bool:
        """Join live handler threads against one shared deadline.

        Returns ``True`` when every handler finished; stragglers are
        abandoned (daemonic) and counted in :attr:`abandoned_handlers`.
        """
        deadline = time.monotonic() + timeout_s
        with self._handler_lock:
            threads = list(self._handler_threads)
        for thread in threads:
            remaining = deadline - time.monotonic()
            if remaining > 0:
                thread.join(remaining)
            if thread.is_alive():
                self.abandoned_handlers += 1
        return self.abandoned_handlers == 0

    def shutdown_gracefully(self, timeout_s: float = DEFAULT_DRAIN_S) -> bool:
        """Stop accepting, drain bounded, close the socket.

        Safe to call from a signal handler's thread or a test; callers
        running :meth:`serve_forever` on another thread see it return.
        """
        if self._serving.is_set():
            self.shutdown()
        drained = self.drain(timeout_s)
        self.server_close()
        return drained

    def serve_background(self, name: str = "httpd") -> threading.Thread:
        """Run the accept loop on a named daemon thread."""
        thread = threading.Thread(
            target=self.serve_forever, name=name, daemon=True
        )
        thread.start()
        return thread
