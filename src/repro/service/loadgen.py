"""``pvc-bench loadgen``: the service's load generator and drill client.

A stdlib-threads HTTP client that fires configurable request storms at
a running daemon and reports what the service promised under load:
admission behaviour (how much was shed, with what retry hints), tail
latency (p50/p90/p99 per outcome), and cache effectiveness (the warm
hit rate the CI smoke job asserts ≥90% on).

Latency percentiles come from the shared
:class:`~repro.telemetry.metrics.Histogram` estimator over the same
bucket layout (:data:`~repro.obs.requests.LATENCY_BUCKETS_S`) the
daemon's RED metrics use — client-side p99 and server-side p99 are the
same statistic computed by the same code, so they can be compared
without estimator skew.  The client also reads the ``traceparent``
response header the daemon mints, counting correlated responses, so a
storm's client-side latencies can be joined to server-side spans.

The request population is a pure function of ``(requests, tenants,
distinct, seed)`` via :class:`~repro.faults.process.SeededDraw`-style
deterministic choice — two loadgen runs with the same knobs issue the
same request ids and bodies, which is what lets the kill-drill compare
a pre-SIGKILL run against its post-restart retry byte-for-byte.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

from ..errors import CampaignError
from ..obs.requests import LATENCY_BUCKETS_S, TRACEPARENT_HEADER
from ..telemetry.metrics import Histogram

__all__ = [
    "LoadgenReport",
    "build_requests",
    "loadgen_main",
    "run_loadgen",
    "service_benchmark_entries",
]

#: Bench commands the generator samples from when asked for variety.
VARIED_COMMANDS = ("table1", "table2", "table4", "table5", "fig1", "fig2")

DEFAULT_REQUESTS = 200
DEFAULT_CONCURRENCY = 16
DEFAULT_TENANTS = 4
DEFAULT_TIMEOUT_S = 60.0


class LoadgenReport:
    """Aggregated outcome of one loadgen run."""

    def __init__(self) -> None:
        self.outcomes: dict[str, int] = {}
        self.latency = Histogram(
            "loadgen.latency_s", buckets=LATENCY_BUCKETS_S
        )
        self.cached_hits = 0
        self.completed = 0
        self.retry_after_seen = 0
        self.traced = 0
        self.errors: list[str] = []
        self._lock = threading.Lock()

    def record(
        self,
        outcome: str,
        latency_s: float,
        cached: bool = False,
        traced: bool = False,
    ) -> None:
        with self._lock:
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
            self.latency.observe(latency_s, outcome=outcome)
            if traced:
                self.traced += 1
            if outcome == "done":
                self.completed += 1
                if cached:
                    self.cached_hits += 1

    def error(self, message: str) -> None:
        with self._lock:
            self.errors.append(message)
            self.outcomes["error"] = self.outcomes.get("error", 0) + 1

    @property
    def hit_rate(self) -> float:
        return self.cached_hits / self.completed if self.completed else 0.0

    def percentile(self, q: float, outcome: str | None = None) -> float:
        """Latency quantile — per outcome, or folded over all of them."""
        if outcome is None:
            return self.latency.folded_percentile(q)
        return self.latency.percentile(q, outcome=outcome)

    def to_dict(self) -> dict:
        summary = {}
        for outcome in sorted(self.outcomes):
            count = self.latency.count(outcome=outcome)
            if not count:
                continue
            summary[outcome] = {
                "count": count,
                "p50_s": round(self.latency.percentile(0.50, outcome=outcome), 6),
                "p90_s": round(self.latency.percentile(0.90, outcome=outcome), 6),
                "p99_s": round(self.latency.percentile(0.99, outcome=outcome), 6),
            }
        return {
            "outcomes": dict(sorted(self.outcomes.items())),
            "latency": summary,
            "completed": self.completed,
            "cached_hits": self.cached_hits,
            "hit_rate": round(self.hit_rate, 4),
            "shed_with_hint": self.retry_after_seen,
            "traced": self.traced,
            "errors": len(self.errors),
        }

    def render(self) -> str:
        doc = self.to_dict()
        lines = ["loadgen report", "-" * 48]
        for outcome, count in doc["outcomes"].items():
            stats = doc["latency"].get(outcome)
            tail = (
                f"  p50={stats['p50_s'] * 1e3:8.1f}ms"
                f"  p99={stats['p99_s'] * 1e3:8.1f}ms"
                if stats
                else ""
            )
            lines.append(f"{outcome:<12} {count:6d}{tail}")
        lines.append(
            f"cache        {doc['cached_hits']}/{doc['completed']} warm "
            f"(hit rate {doc['hit_rate']:.1%})"
        )
        if doc["shed_with_hint"]:
            lines.append(
                f"shed         {doc['shed_with_hint']} with Retry-After hints"
            )
        if doc["traced"]:
            lines.append(
                f"traced       {doc['traced']} responses carried traceparent"
            )
        if doc["errors"]:
            lines.append(f"errors       {doc['errors']}")
        return "\n".join(lines)


def build_requests(
    count: int,
    tenants: int = DEFAULT_TENANTS,
    distinct: int = 1,
    seed: int = 0,
    prefix: str = "load",
    deadline_s: float | None = None,
) -> list[dict]:
    """The deterministic request population for one run.

    ``distinct`` controls content variety: 1 means every request shares
    one body (maximal cache pressure — the warm-rate drill), larger
    values cycle through :data:`VARIED_COMMANDS` and seeds.  Request
    ids are stable across runs with the same knobs, so a repeat run
    exercises the daemon's idempotency path end to end.
    """
    distinct = max(1, min(distinct, count)) if count else 0
    population = []
    for index in range(count):
        variant = (index * 2654435761 + seed) % distinct
        body = {
            "request_id": f"{prefix}-{seed}-{index:05d}",
            "tenant": f"tenant-{index % max(tenants, 1)}",
            "command": VARIED_COMMANDS[variant % len(VARIED_COMMANDS)],
            "seed": seed + variant // len(VARIED_COMMANDS),
        }
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        population.append(body)
    return population


def _issue(
    host: str,
    port: int,
    body: dict,
    report: LoadgenReport,
    timeout_s: float,
    slow_loris_s: float = 0.0,
) -> None:
    started = time.monotonic()
    try:
        conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
        try:
            payload = json.dumps(body)
            if slow_loris_s > 0.0:
                # Deliberately dribble the body to trip (or probe) the
                # server's per-socket timeout.
                conn.putrequest("POST", "/v1/requests?wait=1")
                conn.putheader("Content-Type", "application/json")
                conn.putheader("Content-Length", str(len(payload)))
                conn.endheaders()
                half = len(payload) // 2
                conn.send(payload[:half].encode())
                time.sleep(slow_loris_s)
                conn.send(payload[half:].encode())
            else:
                conn.request(
                    "POST",
                    "/v1/requests?wait=1",
                    body=payload,
                    headers={"Content-Type": "application/json"},
                )
            resp = conn.getresponse()
            raw = resp.read()
            latency = time.monotonic() - started
            traced = bool(resp.getheader(TRACEPARENT_HEADER))
            if resp.status == 429:
                if resp.getheader("Retry-After"):
                    with report._lock:
                        report.retry_after_seen += 1
                report.record("shed", latency, traced=traced)
            elif resp.status in (200, 202):
                doc = json.loads(raw)
                status = doc.get("status", "queued")
                # A request that the daemon expired at its deadline is
                # not a shed and not an ordinary failure: the client's
                # own deadline was the cause.  Report it distinctly.
                if doc.get("reason") == "deadline-expired":
                    status = "expired"
                report.record(
                    status,
                    latency,
                    cached=bool(doc.get("cached")),
                    traced=traced,
                )
            elif resp.status == 503:
                report.record("draining", latency, traced=traced)
            else:
                report.record(f"http-{resp.status}", latency, traced=traced)
        finally:
            conn.close()
    except (OSError, ValueError, http.client.HTTPException) as exc:
        report.error(f"{body.get('request_id')}: {exc}")


def run_loadgen(
    host: str,
    port: int,
    requests: int = DEFAULT_REQUESTS,
    concurrency: int = DEFAULT_CONCURRENCY,
    tenants: int = DEFAULT_TENANTS,
    distinct: int = 1,
    seed: int = 0,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    slow_loris_s: float = 0.0,
    prefix: str = "load",
    deadline_s: float | None = None,
) -> LoadgenReport:
    """Fire the request population at the daemon, bounded concurrency."""
    population = build_requests(
        requests, tenants=tenants, distinct=distinct, seed=seed,
        prefix=prefix, deadline_s=deadline_s,
    )
    report = LoadgenReport()
    gate = threading.Semaphore(max(concurrency, 1))
    threads = []

    def worker(body: dict) -> None:
        try:
            _issue(host, port, body, report, timeout_s, slow_loris_s)
        finally:
            gate.release()

    for body in population:
        gate.acquire()
        thread = threading.Thread(target=worker, args=(body,), daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout_s)
    return report


def service_benchmark_entries(
    directory: str | os.PathLike,
    requests: int = 64,
    concurrency: int = 8,
    distinct: int = 4,
    seed: int = 0,
) -> list[dict]:
    """Measure the service under a standard storm, as baseline entries.

    Boots a throwaway daemon over *directory*, warms the result cache
    with one request per distinct body, then runs the storm and returns
    one ``profile``-style entry carrying the gated fields: storm p99
    latency and service cache hit rate (the warm pass makes the
    expected hit rate 1.0, so any miss is a real regression, not
    scheduling luck).
    """
    from .admission import AdmissionController
    from .daemon import BenchDaemon

    daemon = BenchDaemon(
        directory,
        workers=4,
        admission=AdmissionController(
            bucket_capacity=max(float(requests), 64.0),
            bucket_rate=max(float(requests), 64.0),
        ),
    )
    daemon.start()
    try:
        host, port = "127.0.0.1", daemon.port
        warm = run_loadgen(
            host, port,
            requests=min(distinct, requests),
            concurrency=concurrency,
            distinct=distinct,
            seed=seed,
            prefix="warm",
        )
        if warm.errors:
            raise CampaignError(
                f"service warmup failed: {warm.errors[0]}"
            )
        started = time.monotonic()
        storm = run_loadgen(
            host, port,
            requests=requests,
            concurrency=concurrency,
            distinct=distinct,
            seed=seed,
            prefix="storm",
        )
        wall_s = time.monotonic() - started
        if storm.errors:
            raise CampaignError(
                f"service storm failed: {storm.errors[0]}"
            )
    finally:
        daemon.stop()
    return [
        {
            "bench": "service-storm",
            "system": "local",
            "requests": requests,
            "completed": storm.completed,
            "wall_s": round(wall_s, 6),
            "storm_p99_s": round(storm.percentile(0.99, "done"), 6),
            "service_cache_hit_rate": round(storm.hit_rate, 4),
        }
    ]


def loadgen_main(args) -> int:
    """Dispatch ``pvc-bench loadgen --port N [--requests R] ...``."""
    port = getattr(args, "port", None)
    if not port:
        raise CampaignError("loadgen needs --port <daemon port>")
    report = run_loadgen(
        getattr(args, "host", None) or "127.0.0.1",
        port,
        requests=getattr(args, "requests", None) or DEFAULT_REQUESTS,
        concurrency=getattr(args, "concurrency", None) or DEFAULT_CONCURRENCY,
        tenants=getattr(args, "tenants", None) or DEFAULT_TENANTS,
        distinct=getattr(args, "distinct", None) or 1,
        seed=getattr(args, "seed", None) or 0,
        deadline_s=getattr(args, "deadline", None),
    )
    print(report.render())
    return 0 if not report.errors else 1
