"""Admission control: per-tenant token buckets over a bounded queue.

"Scaling MPI Applications on Aurora" (PAPERS.md) shows service-level
queueing and contention dominating at scale — an admission layer that
sheds early and predictably is what keeps p99 bounded under a request
storm.  The policy here is deliberately simple and fully deterministic
given a clock:

* each tenant owns a **token bucket** (``capacity`` burst, ``rate``
  sustained requests/second): an empty bucket sheds the request with
  a 429 and a ``Retry-After`` hint telling the client exactly when the
  next token lands, so honest clients converge on the sustained rate
  instead of hammering;
* a **bounded global queue** caps total backlog: a full queue sheds
  regardless of tenant budget (the overload signal), with a
  ``Retry-After`` scaled to the backlog drain time;
* **fair ordering** — the queue interleaves tenants round-robin, so a
  storm from one tenant cannot starve another's trickle: each dequeue
  takes the oldest request of the least-recently-served tenant.

The clock is injectable (``now``) so tests and the ``request-storm``
drill replay identical schedules.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

__all__ = ["AdmissionController", "Decision", "TokenBucket"]

#: Defaults sized for the loadgen drills: a burst of 64 then 32 rps
#: sustained per tenant, 1024 requests of total backlog.
DEFAULT_BUCKET_CAPACITY = 64.0
DEFAULT_BUCKET_RATE = 32.0
DEFAULT_QUEUE_DEPTH = 1024


class TokenBucket:
    """The classic leaky counter: ``capacity`` burst, ``rate`` refill/s."""

    __slots__ = ("capacity", "rate", "tokens", "stamp")

    def __init__(self, capacity: float, rate: float, now: float) -> None:
        if capacity < 1 or rate <= 0:
            raise ValueError("token bucket needs capacity >= 1 and rate > 0")
        self.capacity = float(capacity)
        self.rate = float(rate)
        self.tokens = float(capacity)
        self.stamp = now

    def _refill(self, now: float) -> None:
        elapsed = max(now - self.stamp, 0.0)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self.stamp = now

    def take(self, now: float) -> float:
        """Consume one token; returns 0.0, or the seconds until one lands."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass(frozen=True)
class Decision:
    """One admission verdict."""

    admitted: bool
    reason: str = ""
    retry_after_s: float = 0.0
    trace_id: str = ""


class AdmissionController:
    """Thread-safe admission + fair dequeue for the daemon's executor."""

    def __init__(
        self,
        bucket_capacity: float = DEFAULT_BUCKET_CAPACITY,
        bucket_rate: float = DEFAULT_BUCKET_RATE,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        clock=time.monotonic,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.bucket_capacity = bucket_capacity
        self.bucket_rate = bucket_rate
        self.queue_depth = queue_depth
        self.clock = clock
        self.shed_tenant = 0
        self.shed_backlog = 0
        self.admitted = 0
        #: tenant -> sheds of that tenant's requests (either reason);
        #: feeds the per-tenant board and RED shed counters.
        self._tenant_sheds: dict[str, int] = {}
        #: trace ids holding a reserved-but-not-enqueued slot; a trace
        #: lingering here is a leaked reservation (visible in stats()).
        self._reserved_traces: set[str] = set()
        self._buckets: dict[str, TokenBucket] = {}
        #: tenant -> FIFO of queued items; OrderedDict order is the
        #: round-robin service order (least recently served first).
        self._queues: OrderedDict[str, deque] = OrderedDict()
        self._depth = 0
        #: Admitted-but-not-yet-enqueued slots (see :meth:`admit`);
        #: counted against ``queue_depth`` so the backlog bound holds
        #: while the caller finishes its pre-queue bookkeeping.
        self._reserved = 0
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------

    def admit(self, tenant: str, trace_id: str = "") -> Decision:
        """Decide (and reserve a queue slot) without enqueueing.

        The daemon must journal a request and register it in its
        in-flight table *before* an executor can see it; this first
        phase takes the admission decision and holds the slot while
        that bookkeeping happens.  An admitted decision MUST be paired
        with exactly one :meth:`enqueue` (make the item visible) or
        :meth:`release` (bookkeeping failed, give the slot back).

        A ``trace_id`` travels with the slot reservation so an admitted
        request is attributable from decision onward: the decision
        echoes it, and an unreturned reservation shows up by trace id
        in :meth:`stats`.
        """
        now = self.clock()
        with self._lock:
            if self._closed:
                return Decision(
                    False, "draining", retry_after_s=1.0, trace_id=trace_id
                )
            if self._depth + self._reserved >= self.queue_depth:
                self.shed_backlog += 1
                self._tenant_sheds[tenant] = (
                    self._tenant_sheds.get(tenant, 0) + 1
                )
                # Backlog drain hint: pretend the whole queue retires at
                # the sustained per-tenant rate; coarse but monotone in
                # the overload.
                return Decision(
                    False,
                    "queue full",
                    retry_after_s=max(
                        (self._depth + self._reserved) / self.bucket_rate, 1.0
                    ),
                    trace_id=trace_id,
                )
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.bucket_capacity, self.bucket_rate, now
                )
            wait = bucket.take(now)
            if wait > 0.0:
                self.shed_tenant += 1
                self._tenant_sheds[tenant] = (
                    self._tenant_sheds.get(tenant, 0) + 1
                )
                return Decision(
                    False, "tenant rate", retry_after_s=wait,
                    trace_id=trace_id,
                )
            self._reserved += 1
            self.admitted += 1
            if trace_id:
                self._reserved_traces.add(trace_id)
            return Decision(True, trace_id=trace_id)

    def enqueue(self, tenant: str, item, trace_id: str = "") -> None:
        """Fill a slot reserved by :meth:`admit`: make *item* takeable."""
        with self._lock:
            self._reserved -= 1
            self._reserved_traces.discard(trace_id)
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = deque()
            queue.append(item)
            self._depth += 1
            self._ready.notify()

    def release(self, trace_id: str = "") -> None:
        """Give back a slot reserved by :meth:`admit` (nothing enqueued)."""
        with self._lock:
            self._reserved -= 1
            self._reserved_traces.discard(trace_id)

    def submit(self, tenant: str, item) -> Decision:
        """Admit and immediately enqueue *item* (no bookkeeping phase)."""
        decision = self.admit(tenant)
        if decision.admitted:
            self.enqueue(tenant, item)
        return decision

    def requeue(self, tenant: str, item) -> None:
        """Put a recovered/deferred item back without admission checks.

        Used by crash recovery (journalled requests re-enter the queue
        on restart — they already paid admission once) and by drain
        persistence.  Recovered items go to the *front* of their
        tenant's FIFO to preserve acceptance order.
        """
        with self._lock:
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = deque()
            queue.appendleft(item)
            self._depth += 1
            self._ready.notify()

    # ------------------------------------------------------------------
    # egress (executor side)
    # ------------------------------------------------------------------

    def take(self, timeout_s: float | None = None):
        """The next ``(tenant, item)`` in fair order, or ``None``.

        Blocks up to *timeout_s* (forever when ``None``) for work;
        returns ``None`` on timeout or when the controller is closed
        and empty.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        with self._lock:
            while True:
                for tenant in list(self._queues):
                    queue = self._queues[tenant]
                    if queue:
                        item = queue.popleft()
                        self._depth -= 1
                        # Rotate the tenant to the back: round-robin.
                        self._queues.move_to_end(tenant)
                        if not queue:
                            del self._queues[tenant]
                        return tenant, item
                if self._closed:
                    return None
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._ready.wait(remaining)

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Refuse new submissions and wake blocked takers."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()

    def drain_items(self) -> list[tuple[str, object]]:
        """Remove and return every queued ``(tenant, item)``, fair order."""
        items: list[tuple[str, object]] = []
        with self._lock:
            while self._depth:
                for tenant in list(self._queues):
                    queue = self._queues[tenant]
                    if queue:
                        items.append((tenant, queue.popleft()))
                        self._depth -= 1
                        self._queues.move_to_end(tenant)
                        if not queue:
                            del self._queues[tenant]
        return items

    @property
    def depth(self) -> int:
        return self._depth

    def stats(self) -> dict:
        return {
            "depth": self._depth,
            "reserved": self._reserved,
            "reserved_traces": sorted(self._reserved_traces),
            "admitted": self.admitted,
            "shed_tenant": self.shed_tenant,
            "shed_backlog": self.shed_backlog,
            "tenants": len(self._buckets),
        }

    def tenant_stats(self) -> dict[str, dict]:
        """Per-tenant board rows: queued depth, token level, sheds.

        ``_refill`` is idempotent for a fixed clock reading, so peeking
        at the live token level here does not perturb admission.
        """
        now = self.clock()
        with self._lock:
            tenants = set(self._buckets) | set(self._queues)
            tenants |= set(self._tenant_sheds)
            out: dict[str, dict] = {}
            for tenant in sorted(tenants):
                bucket = self._buckets.get(tenant)
                if bucket is not None:
                    bucket._refill(now)
                out[tenant] = {
                    "queued": len(self._queues.get(tenant, ())),
                    "tokens": (
                        round(bucket.tokens, 3) if bucket else None
                    ),
                    "capacity": bucket.capacity if bucket else None,
                    "shed": self._tenant_sheds.get(tenant, 0),
                }
            return out
