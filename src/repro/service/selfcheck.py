"""``pvc-bench health`` section for the benchmark service.

An in-process end-to-end drill over an ephemeral state directory: boot
a real daemon on a loopback port, round-trip a request through HTTP,
prove the cache serves a byte-identical warm replay, corrupt the
cached object on disk and prove the read quarantines-and-recomputes
instead of crashing, then drain gracefully.  Everything runs in a few
hundred milliseconds and touches only a temp directory, so it is safe
for the health command's repeated invocation.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import urllib.error
import urllib.request

from ..hw.selfcheck import CheckResult

__all__ = ["service_selfcheck"]

_TIMEOUT_S = 30.0


def _post(url: str, doc: dict) -> tuple[int, dict, dict]:
    req = urllib.request.Request(
        url + "/v1/requests?wait=1",
        data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=_TIMEOUT_S) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers or {})


def _get(url: str, path: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url + path, timeout=_TIMEOUT_S) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def service_selfcheck() -> list[CheckResult]:
    """Run the four service drills against a throwaway daemon.

    Boots a real :class:`~repro.service.daemon.BenchDaemon` on an
    ephemeral port over a temp state directory and checks, in order:
    a cold request round-trips to ``done``; a second request with the
    same content is served byte-identically from the memo store; a
    corrupted cache object is quarantined and recomputed rather than
    crashing the request; and shutdown drains cleanly.  Returns one
    :class:`~repro.hw.selfcheck.CheckResult` per drill — the same
    shape every other ``pvc-bench health`` section reports.
    """
    from .daemon import BenchDaemon

    checks: list[CheckResult] = []
    root = tempfile.mkdtemp(prefix="repro-service-check-")
    daemon = None
    try:
        daemon = BenchDaemon(root, workers=1)
        daemon.start()
        url = daemon.url

        status, doc, headers = _post(
            url, {"request_id": "health-1", "command": "table4"}
        )
        cold_ok = status == 200 and doc.get("status") == "done"
        checks.append(
            CheckResult(
                "daemon round-trip",
                cold_ok,
                f"POST /v1/requests -> {status} {doc.get('status')!r}",
            )
        )
        cold_text = doc.get("text", "")

        status, warm, _ = _post(
            url, {"request_id": "health-2", "command": "table4"}
        )
        warm_ok = (
            status == 200
            and warm.get("cached") is True
            and warm.get("text") == cold_text
        )
        checks.append(
            CheckResult(
                "cache read-back",
                warm_ok,
                "warm replay byte-identical"
                if warm_ok
                else f"cached={warm.get('cached')!r}",
            )
        )

        # Corrupt the cached object in place; the next read must
        # quarantine it and recompute the identical answer.
        digest = warm.get("digest", "")
        path = daemon.state.cache.object_path(digest)
        try:
            with open(path, "r+", encoding="utf-8") as fh:
                fh.seek(0)
                fh.write("garbage")
        except OSError:
            pass
        status, healed, _ = _post(
            url, {"request_id": "health-3", "command": "table4"}
        )
        quarantined = daemon.state.cache.stats()["quarantined"]
        healed_ok = (
            status == 200
            and healed.get("status") == "done"
            and healed.get("text") == cold_text
            and quarantined >= 1
        )
        checks.append(
            CheckResult(
                "corruption quarantine",
                healed_ok,
                f"{quarantined} quarantined, recompute byte-identical"
                if healed_ok
                else f"status={status} quarantined={quarantined}",
            )
        )

        # Trace propagation: the response header must carry the same
        # deterministic trace id the daemon minted from (request id,
        # content digest), and the span must have landed — schema
        # valid — in requests.ndjson.
        from ..obs.requests import (
            TRACEPARENT_HEADER,
            mint_trace,
            parse_traceparent,
            read_requests,
        )

        minted = mint_trace("health-1", doc.get("digest", ""))
        ctx = parse_traceparent(
            {k.lower(): v for k, v in headers.items()}.get(TRACEPARENT_HEADER)
        )
        spans = [
            rec
            for rec in read_requests(daemon.state.requests_stream_path)
            if rec["type"] == "request-span"
        ]
        span_ids = {rec["trace_id"] for rec in spans}
        trace_ok = (
            doc.get("trace_id") == minted.trace_id
            and ctx is not None
            and ctx.trace_id == minted.trace_id
            and minted.trace_id in span_ids
        )
        checks.append(
            CheckResult(
                "trace propagation",
                trace_ok,
                f"traceparent deterministic, {len(spans)} span(s) logged"
                if trace_ok
                else f"trace_id={doc.get('trace_id')!r} minted={minted.trace_id!r}",
            )
        )

        # SLO + RED surfaces: /healthz carries the burn-rate snapshot
        # and /metrics exposes the request latency histogram.
        status, health_raw = _get(url, "/healthz")
        health_doc = json.loads(health_raw)
        slo = health_doc.get("slo") or {}
        m_status, metrics_raw = _get(url, "/metrics")
        metrics_text = metrics_raw.decode("utf-8", "replace")
        slo_ok = (
            status == 200
            and slo.get("status") in ("ok", "burning")
            and "windows" in slo
            and m_status == 200
            and "service_request_latency" in metrics_text
        )
        checks.append(
            CheckResult(
                "slo + red metrics",
                slo_ok,
                f"slo {slo.get('status')} compliance="
                f"{slo.get('compliance')}, /metrics has RED histograms"
                if slo_ok
                else f"healthz={status} slo={slo.get('status')!r} "
                f"metrics={m_status}",
            )
        )

        drained = daemon.stop(timeout_s=10.0)
        daemon = None
        checks.append(
            CheckResult(
                "graceful drain",
                drained,
                "in-flight finished, handlers joined"
                if drained
                else "drain timed out",
            )
        )
    except Exception as exc:  # noqa: BLE001 - health must not traceback
        checks.append(CheckResult("service drill", False, f"{exc}"))
    finally:
        if daemon is not None:
            try:
                daemon.stop(timeout_s=5.0)
            except Exception:  # noqa: BLE001
                pass
        shutil.rmtree(root, ignore_errors=True)
    return checks
