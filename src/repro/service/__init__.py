"""The fault-tolerant benchmark-as-a-service layer.

``pvc-bench serve-bench`` turns the reproduction into a long-running
daemon: HTTP requests for tables, figures, reports and whole campaigns
are admitted through per-tenant token buckets, journalled before they
are queued, executed against a persistent shared memo store
(:mod:`repro.sim.memostore`), and answered with cached, byte-identical
results on retry — across process restarts and SIGKILLs.

Modules:

* :mod:`.httpd` — the graceful ``ThreadingHTTPServer`` base (tracked
  handler threads, bounded drain, slow-loris socket timeouts), shared
  with ``pvc-bench obs serve``.
* :mod:`.admission` — token buckets, the bounded fair queue, 429
  shedding with ``Retry-After`` hints.
* :mod:`.state` — the durable request journal, terminal records, and
  crash recovery.
* :mod:`.daemon` — :class:`~repro.service.daemon.BenchDaemon`, the
  process tying it together.
* :mod:`.loadgen` — the request-storm client and latency/hit-rate
  reporter (``pvc-bench loadgen``), plus the ``profile service``
  storm benchmark entries.

Every admitted request carries a deterministic W3C-style trace
context (:mod:`repro.obs.requests`): the daemon mints it from the
request id + content digest, threads it through admission, the queue
and forked campaign workers, and returns it in the ``traceparent``
response header so client-side and server-side latency join on one
trace id.
* :mod:`.selfcheck` — the ``pvc-bench health`` service drill.

See ``docs/service.md`` for the API, the lifecycle model and the
crash-drill invariants.
"""

from .admission import AdmissionController, Decision, TokenBucket
from .daemon import BenchDaemon, serve_bench_main
from .httpd import GracefulHTTPServer
from .loadgen import LoadgenReport, loadgen_main, run_loadgen
from .selfcheck import service_selfcheck
from .state import ServiceState, normalize_request, request_digest

__all__ = [
    "AdmissionController",
    "BenchDaemon",
    "Decision",
    "GracefulHTTPServer",
    "LoadgenReport",
    "ServiceState",
    "TokenBucket",
    "loadgen_main",
    "normalize_request",
    "request_digest",
    "run_loadgen",
    "serve_bench_main",
    "service_selfcheck",
]
