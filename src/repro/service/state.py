"""Durable request state for the benchmark daemon.

Everything the daemon must not lose across a SIGKILL lives under one
state directory::

    queue.jsonl            sealed request-lifecycle journal
    requests/<rid>.json    one terminal record per request id
    cache/                 the shared MemoStore (results + model points)
    campaigns/<digest>/    campaign run dirs (journal, store, tables)
    live.ndjson            service live events (repro.obs schema)
    requests.ndjson        request lifecycle spans (repro.obs.requests)

The **queue journal** is the write-ahead log of the admission queue:
``accepted`` (full request document) when a request passes admission,
``done`` (status + result digest) when its terminal record has been
persisted.  Recovery is a replay: every accepted-but-not-done request
re-enters the executor queue on restart, in acceptance order — which
is exactly what makes a mid-request SIGKILL invisible to a retrying
client.  Records are sealed with the shared checksum scheme and the
reader tolerates a torn tail, so a crash mid-append costs at most the
record being appended (whose request the client will retry, and whose
side effects are idempotent).

**Idempotency** is two-layered:

* *request id* — the client's retry key.  A replayed id returns the
  original terminal record (or attaches to the in-flight execution)
  instead of re-running.
* *content digest* — :func:`repro.sim.memo.content_digest` of the
  normalized request body (id and tenant excluded).  Distinct ids with
  identical content share one cache entry and, for campaigns, one run
  directory — the resume path turns a re-run into a verify-and-skip.
"""

from __future__ import annotations

import json
import os
import re
import threading

from ..ioutils import (
    atomic_write_json,
    atomic_write_text,
    fsync_append_text,
    read_sealed_ndjson,
    seal_record,
)
from ..sim.memo import content_digest
from ..sim.memostore import MemoStore

__all__ = ["ServiceState", "normalize_request", "request_digest"]

#: Queue journal schema version.
QUEUE_VERSION = 1

#: Operations a queue record may carry.
QUEUE_OPS = ("accepted", "done")

#: Request kinds the daemon executes.
REQUEST_KINDS = ("bench", "campaign")

_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def _valid_queue_record(doc: dict) -> bool:
    return (
        doc.get("v") == QUEUE_VERSION
        and doc.get("op") in QUEUE_OPS
        and isinstance(doc.get("request_id"), str)
    )


def _coerce(value, convert, field: str, default):
    """Coerce a JSON field, mapping every failure to :class:`ValueError`.

    ``int({})``/``float(None)`` raise ``TypeError``, not ``ValueError``
    — without this shim a body like ``{"seed": null}`` would escape the
    daemon's 400 mapping as a traceback.
    """
    if value is None:
        return default
    try:
        return convert(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{field} must be a {convert.__name__}, got {value!r}"
        ) from None


def normalize_request(doc: dict) -> dict:
    """The canonical request body (identity fields only, defaults filled).

    Raises :class:`ValueError` on a malformed request — the daemon maps
    that to a 400, never a traceback.
    """
    if not isinstance(doc, dict):
        raise ValueError("request body must be a JSON object")
    kind = doc.get("kind", "bench")
    if kind not in REQUEST_KINDS:
        raise ValueError(
            f"unknown request kind {kind!r}; choose from: "
            + ", ".join(REQUEST_KINDS)
        )
    body = {
        "kind": kind,
        "scenario": doc.get("scenario"),
        "seed": _coerce(doc.get("seed"), int, "seed", 0),
        "deadline_s": (
            _coerce(doc["deadline_s"], float, "deadline_s", None)
            if doc.get("deadline_s")
            else None
        ),
    }
    if body["scenario"] is not None and not isinstance(body["scenario"], str):
        raise ValueError("scenario must be a string or null")
    if kind == "bench":
        command = doc.get("command")
        if not isinstance(command, str) or not command:
            raise ValueError("bench requests need a 'command'")
        body["command"] = command
    else:
        spec = doc.get("spec", "smoke")
        if not isinstance(spec, str) or not spec:
            raise ValueError("campaign requests need a 'spec'")
        body["spec"] = spec
        body["jobs"] = _coerce(doc.get("jobs"), int, "jobs", 1)
    return body


def request_digest(body: dict) -> str:
    """Content address of a normalized request body."""
    return content_digest(normalize_request(body))


class ServiceState:
    """One daemon's durable footprint (crash-safe by construction)."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.requests_dir, exist_ok=True)
        self._lock = threading.Lock()
        self.cache = MemoStore(self.cache_dir)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    @property
    def queue_path(self) -> str:
        return os.path.join(self.root, "queue.jsonl")

    @property
    def requests_dir(self) -> str:
        return os.path.join(self.root, "requests")

    @property
    def cache_dir(self) -> str:
        return os.path.join(self.root, "cache")

    @property
    def campaigns_dir(self) -> str:
        return os.path.join(self.root, "campaigns")

    @property
    def requests_stream_path(self) -> str:
        """The request lifecycle stream (``repro.obs.requests`` schema)."""
        from ..obs.requests import REQUESTS_FILE

        return os.path.join(self.root, REQUESTS_FILE)

    def record_path(self, request_id: str) -> str:
        return os.path.join(
            self.requests_dir, _SAFE.sub("_", request_id) + ".json"
        )

    def campaign_dir(self, digest: str) -> str:
        return os.path.join(self.campaigns_dir, digest[:16])

    # ------------------------------------------------------------------
    # queue journal
    # ------------------------------------------------------------------

    def journal_accepted(self, request_id: str, tenant: str, body: dict) -> None:
        self._append(
            {
                "v": QUEUE_VERSION,
                "op": "accepted",
                "request_id": request_id,
                "tenant": tenant,
                "request": body,
            }
        )

    def journal_done(self, request_id: str, status: str, digest: str) -> None:
        self._append(
            {
                "v": QUEUE_VERSION,
                "op": "done",
                "request_id": request_id,
                "status": status,
                "digest": digest,
            }
        )

    def _append(self, body: dict) -> None:
        rec = seal_record(body)
        with self._lock:
            fsync_append_text(
                self.queue_path, json.dumps(rec, sort_keys=True) + "\n"
            )

    def read_queue(self) -> tuple[list[dict], int]:
        return read_sealed_ndjson(self.queue_path, accept=_valid_queue_record)

    # ------------------------------------------------------------------
    # terminal records
    # ------------------------------------------------------------------

    def write_record(self, request_id: str, record: dict) -> None:
        atomic_write_json(self.record_path(request_id), record)

    def load_record(self, request_id: str) -> dict | None:
        path = self.record_path(request_id)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self) -> list[dict]:
        """Accepted-but-unfinished requests, in acceptance order.

        Compacts the queue journal while at it: one atomic rewrite
        holding only the surviving ``accepted`` records, so a
        long-running daemon's journal is bounded by its backlog, not
        its history.  A request whose terminal record exists on disk
        but whose ``done`` append was lost to the crash counts as done
        (the record is the truth; the journal is the intent log).
        """
        records, _dropped = self.read_queue()
        pending: dict[str, dict] = {}
        for rec in records:
            if rec["op"] == "accepted":
                pending[rec["request_id"]] = {
                    "request_id": rec["request_id"],
                    "tenant": rec.get("tenant", "default"),
                    "request": rec.get("request", {}),
                }
            else:
                pending.pop(rec["request_id"], None)
        survivors = [
            item
            for item in pending.values()
            if (self.load_record(item["request_id"]) or {}).get("status")
            not in ("done", "failed")
        ]
        with self._lock:
            lines = []
            for item in survivors:
                rec = seal_record(
                    {
                        "v": QUEUE_VERSION,
                        "op": "accepted",
                        "request_id": item["request_id"],
                        "tenant": item["tenant"],
                        "request": item["request"],
                    }
                )
                lines.append(json.dumps(rec, sort_keys=True) + "\n")
            atomic_write_text(self.queue_path, "".join(lines))
        return survivors
