"""``pvc-bench serve-bench``: the fault-tolerant benchmark daemon.

A stdlib-only HTTP service that accepts benchmark and campaign
requests, multiplexes them onto the existing execution machinery
(table renderers for ``bench`` requests, the fork-worker campaign
scheduler for ``campaign`` requests), and serves status and results —
engineered for failure first:

* **Admission control** (:mod:`.admission`): per-tenant token buckets
  and a bounded backlog; overload sheds with ``429`` + ``Retry-After``
  instead of queueing unboundedly.
* **Durable intent** (:mod:`.state`): every admitted request is
  journalled before it is queued, its terminal record is written
  atomically before ``done`` is journalled, and results are cached in
  the shared :class:`~repro.sim.memostore.MemoStore` by content
  digest — so a SIGKILL at *any* point either lost nothing or lost
  only work a retry reproduces byte-identically.
* **Idempotency**: a replayed request id returns (or attaches to) the
  original execution; distinct ids with equal content hit the result
  cache, and campaign requests share a run directory keyed by content
  digest whose resume path verifies-and-skips completed units.
* **Lifecycle**: SIGTERM drains — in-flight requests finish (bounded),
  queued ones stay journalled for the next start, new ones get 503;
  startup replays the journal, re-enqueues the backlog, and resumes
  half-run campaigns through the normal resume machinery.
* **Deadlines**: a request's ``deadline_s`` bounds its queue wait and,
  for campaigns, propagates into the orchestrator's simulated-clock
  deadline/watchdog supervision.

Observability rides the existing rails and, since this PR, follows
every request end to end (:mod:`repro.obs.requests`):

* each request gets a deterministic W3C-style trace context minted
  from ``(request_id, content digest)`` — returned in the
  ``traceparent`` response header, threaded through admission, stamped
  onto the state directory's live events, and exported into campaign
  orchestrators/workers via :data:`~repro.obs.requests.TRACEPARENT_ENV`
  so one trace id links the HTTP accept to the fork workers and memo
  hits it caused;
* ``requests.ndjson`` records one schema-validated span per terminal
  request with per-phase timings (parse, admission, queue, cache,
  execute, serialize), and the terminal JSON record carries the same
  phase summary so journal replay reconstructs latency attribution;
* ``/metrics`` serves per-tenant/per-endpoint RED series and
  ``/healthz`` embeds the SLO tracker's multi-window burn rates;
  ``GET /board`` is the live document ``pvc-bench service watch``
  renders.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler

from ..errors import CampaignError, ReproError
from ..exitcodes import ExitCode, classify_error
from ..faults import ExecutionContext
from ..obs.events import EventBus
from ..obs.requests import (
    PHASES,
    TRACEPARENT_HEADER,
    RequestLog,
    SLOConfig,
    SLOTracker,
    TraceContext,
    mint_trace,
    record_span_metrics,
    register_red_metrics,
)
from ..sim.memostore import PersistentMemoCache
from ..telemetry.metrics import MetricsRegistry
from .admission import AdmissionController
from .httpd import GracefulHTTPServer
from .state import ServiceState, normalize_request, request_digest

__all__ = ["BenchDaemon", "serve_bench_main"]

#: Content type the OpenMetrics spec registers for text expositions.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Upper bound on a synchronous (``wait=1``) request's block time.
DEFAULT_WAIT_S = 120.0

#: Extra wait beyond a request's deadline before ``?wait=1`` gives up:
#: a request the executor expires *at* its deadline still answers the
#: waiting connection with its terminal "deadline-expired" record
#: rather than a raced "running" snapshot.
DEADLINE_WAIT_GRACE_S = 5.0

#: Executor threads pulling from the admission queue.
DEFAULT_WORKERS = 4

#: Largest request body the daemon will read (a request is a small
#: JSON document; anything bigger is a client bug or an attack).
MAX_BODY_BYTES = 64 * 1024

#: Benchmark commands a ``bench`` request may name.  Everything here is
#: a pure function of ``(command, scenario, seed)``, which is what
#: makes result caching and crash-retry byte-identical.
_BENCH_COMMANDS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "report",
)


def _render_bench(command: str, ctx: ExecutionContext) -> str:
    from ..analysis import (
        full_report,
        render_figure,
        table_i,
        table_ii,
        table_iii,
        table_iv,
        table_v,
        table_vi,
    )

    if command == "table1":
        return table_i()
    if command == "table2":
        return table_ii(ctx=ctx).render()
    if command == "table3":
        return table_iii(ctx=ctx).render()
    if command == "table4":
        return table_iv().render()
    if command == "table5":
        return table_v()
    if command == "table6":
        return table_vi(ctx=ctx).render()
    if command == "report":
        return full_report(ctx)
    if command in ("fig1", "fig2", "fig3", "fig4"):
        return render_figure(command)
    raise CampaignError(
        f"unknown bench command {command!r}; choose from: "
        + ", ".join(_BENCH_COMMANDS)
    )


def _trace_headers(doc: dict) -> dict:
    """A ``traceparent`` header from a record/status document (or {})."""
    trace_id = doc.get("trace_id")
    span_id = doc.get("span_id")
    if not trace_id or not span_id:
        return {}
    return {
        TRACEPARENT_HEADER: TraceContext(trace_id, span_id).traceparent
    }


def _endpoint(body: dict) -> str:
    """The RED ``endpoint`` label: kind plus what it runs."""
    if body.get("kind") == "campaign":
        return f"campaign:{body.get('spec', '?')}"
    return f"bench:{body.get('command', '?')}"


class _QueuedRequest:
    """One admitted request's in-memory lifecycle handle."""

    __slots__ = (
        "request_id",
        "tenant",
        "body",
        "digest",
        "accepted_at",
        "enqueued_at",
        "status",
        "done",
        "trace",
        "endpoint",
        "phases",
    )

    def __init__(
        self, request_id: str, tenant: str, body: dict, digest: str
    ) -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.body = body
        self.digest = digest
        self.accepted_at = time.monotonic()
        #: Stamped (again) when the request becomes takeable, so the
        #: queue phase measures queue wait alone, not submit overhead.
        self.enqueued_at = self.accepted_at
        self.status = "queued"
        self.done = threading.Event()
        self.trace: TraceContext = mint_trace(request_id, digest)
        self.endpoint = _endpoint(body)
        #: phase name -> seconds (see repro.obs.requests.PHASES).
        self.phases: dict[str, float] = {}


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @property
    def daemon(self) -> "BenchDaemon":
        return self.server.bench_daemon  # type: ignore[attr-defined]

    def _send(
        self,
        status: int,
        body: str,
        content_type: str = "application/json",
        extra_headers: dict | None = None,
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for key, value in (extra_headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(
        self, status: int, doc: dict, extra_headers: dict | None = None
    ) -> None:
        self._send(
            status,
            json.dumps(doc, sort_keys=True) + "\n",
            extra_headers=extra_headers,
        )

    def log_message(self, format, *args) -> None:  # noqa: A002
        pass

    def _path_parts(self) -> tuple[list[str], dict]:
        path, _, query = self.path.partition("?")
        params = {}
        for pair in query.split("&"):
            if "=" in pair:
                key, _, value = pair.partition("=")
                params[key] = value
        return [p for p in path.split("/") if p], params

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parts, _params = self._path_parts()
        daemon = self.daemon
        if parts == ["healthz"]:
            self._send_json(
                200,
                {"status": "draining" if daemon.draining else "ok",
                 "pid": os.getpid(),
                 "slo": daemon.slo.snapshot()},
            )
        elif parts == ["metrics"]:
            self._send(
                200, daemon.openmetrics(), content_type=OPENMETRICS_CONTENT_TYPE
            )
        elif parts == ["board"]:
            self._send_json(200, daemon.board())
        elif parts == []:
            self._send(
                200,
                "repro benchmark service\n"
                "routes: POST /v1/requests, GET /v1/requests/<id>[/result], "
                "/metrics, /healthz, /board\n",
                content_type="text/plain",
            )
        elif len(parts) >= 2 and parts[:2] == ["v1", "requests"]:
            if len(parts) == 3:
                self._get_request(parts[2], as_text=False)
            elif len(parts) == 4 and parts[3] == "result":
                self._get_request(parts[2], as_text=True)
            else:
                self._send_json(404, {"error": "not found"})
        else:
            self._send_json(404, {"error": "not found"})

    def _get_request(self, request_id: str, as_text: bool) -> None:
        doc = self.daemon.request_status(request_id)
        if doc is None:
            self._send_json(404, {"error": f"unknown request {request_id!r}"})
            return
        if not as_text:
            self._send_json(200, doc)
            return
        if doc.get("status") not in ("done", "failed", "interrupted"):
            self._send_json(
                409, {"error": "request not finished", "status": doc["status"]}
            )
            return
        self._send(200, doc.get("text", ""), content_type="text/plain")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parts, params = self._path_parts()
        daemon = self.daemon
        if parts == ["v1", "drain"]:
            daemon.begin_drain()
            self._send_json(200, {"status": "draining"})
            return
        if parts != ["v1", "requests"]:
            self._send_json(404, {"error": "not found"})
            return
        if daemon.draining:
            self._send_json(
                503,
                {"error": "draining; retry against the restarted daemon"},
                extra_headers={"Retry-After": "5"},
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "missing or oversized body"})
            return
        parse_start = time.monotonic()
        try:
            raw = self.rfile.read(length)
            doc = json.loads(raw.decode("utf-8"))
        except (OSError, TimeoutError, UnicodeDecodeError,
                json.JSONDecodeError):
            # Includes the slow-loris case: the socket timeout fires
            # mid-body and the connection is dropped with a 400.
            try:
                self._send_json(400, {"error": "unreadable request body"})
            except OSError:
                pass
            return
        parse_s = time.monotonic() - parse_start
        status, response, headers = daemon.submit(doc, parse_s=parse_s)
        wait = params.get("wait") or (doc.get("wait") if isinstance(doc, dict)
                                      else None)
        if status == 202 and wait:
            deadline_s = response.get("deadline_s")
            finished = daemon.wait_for(
                response["request_id"],
                timeout_s=(
                    deadline_s + DEADLINE_WAIT_GRACE_S
                    if deadline_s
                    else DEFAULT_WAIT_S
                ),
            )
            if finished is not None:
                # The synchronous reply carries the same trace context
                # as the async 202 would, so clients correlate either
                # way.
                self._send_json(
                    200, finished, extra_headers=_trace_headers(finished)
                )
                return
        self._send_json(status, response, extra_headers=headers)


class BenchDaemon:
    """The benchmark-as-a-service process (HTTP front end + executors)."""

    def __init__(
        self,
        directory: str | os.PathLike,
        port: int = 0,
        host: str = "127.0.0.1",
        workers: int = DEFAULT_WORKERS,
        admission: AdmissionController | None = None,
        drain_timeout_s: float = 30.0,
        slo: SLOConfig | None = None,
    ) -> None:
        self.state = ServiceState(directory)
        self.workers = max(int(workers), 1)
        self.drain_timeout_s = drain_timeout_s
        self.draining = False
        self.admission = admission or AdmissionController()
        self.events = EventBus(self.state.root)
        self.metrics = MetricsRegistry()
        self.metrics.counter("service.requests", "requests by kind/outcome")
        self.metrics.counter("service.shed", "requests shed by admission")
        self.metrics.counter("service.recovered",
                             "requests replayed from the queue journal")
        self.metrics.histogram(
            "service.latency_s",
            "request latency (accept to terminal record)",
            buckets=(0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0),
        )
        register_red_metrics(self.metrics)
        self.slo_config = slo or SLOConfig()
        #: Service-wide SLO plus a lazily-created per-tenant tracker
        #: (the board shows who is burning the budget, not just that
        #: someone is).
        self.slo = SLOTracker(self.slo_config)
        self._tenant_slo: dict[str, SLOTracker] = {}
        self._tenant_slo_lock = threading.Lock()
        self.request_log = RequestLog(self.state.root)
        #: Shared model-evaluation cache: every bench request's engines
        #: read and write the same persistent store.
        self.model_cache = PersistentMemoCache(self.state.cache)
        self.state.cache.on_quarantine = lambda key: self.events.live(
            "cache-quarantined", key=key
        )
        self._inflight: dict[str, _QueuedRequest] = {}
        self._inflight_lock = threading.Lock()
        #: digest -> [lock, refcount]: serializes executions of equal
        #: content, so two campaign requests sharing a run directory
        #: can never run two Orchestrators over the same journal.
        self._digest_locks: dict[str, list] = {}
        self._digest_locks_guard = threading.Lock()
        self._executors: list[threading.Thread] = []
        self._stop = threading.Event()
        self.server = GracefulHTTPServer((host, port), _Handler)
        self.server.bench_daemon = self  # type: ignore[attr-defined]
        self._recovered = self._recover()
        self.events.live(
            "service-start",
            pid=os.getpid(),
            port=self.port,
            recovered=self._recovered,
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover(self) -> int:
        """Replay the queue journal: re-enqueue unfinished requests."""
        survivors = self.state.recover()
        for item in reversed(survivors):
            # reversed + appendleft preserves acceptance order.
            req = _QueuedRequest(
                item["request_id"],
                item["tenant"],
                item["request"],
                request_digest(item["request"]),
            )
            with self._inflight_lock:
                self._inflight[req.request_id] = req
            self.admission.requeue(req.tenant, req)
            self.metrics.inc("service.recovered")
            self.events.live(
                "request-recovered",
                request=req.request_id,
                tenant=req.tenant,
            )
        return len(survivors)

    # ------------------------------------------------------------------
    # submission (handler thread)
    # ------------------------------------------------------------------

    def submit(self, doc, parse_s: float = 0.0) -> tuple[int, dict, dict]:
        """Admit one request; returns ``(http_status, body, headers)``."""
        try:
            if not isinstance(doc, dict):
                raise ValueError("request body must be a JSON object")
            request_id = doc.get("request_id")
            if not isinstance(request_id, str) or not request_id:
                raise ValueError("requests need a string 'request_id'")
            tenant = doc.get("tenant", "default")
            if not isinstance(tenant, str) or not tenant:
                raise ValueError("tenant must be a non-empty string")
            body = normalize_request(doc)
        except (TypeError, ValueError) as exc:
            # TypeError too: a coercion a validator missed must still
            # map to a 400, never a dropped connection.
            return 400, {"error": str(exc)}, {}
        digest = request_digest(body)

        # Idempotency layer 1: a known request id never re-runs.  The
        # existence check and the in-flight registration are one
        # critical section, so two concurrent POSTs carrying the same
        # retry key cannot both pass the check and double-run.
        req = _QueuedRequest(request_id, tenant, body, digest)
        req.phases["parse"] = parse_s
        trace_headers = {TRACEPARENT_HEADER: req.trace.traceparent}
        with self._inflight_lock:
            existing = self._status_locked(request_id)
            if existing is not None:
                replay = dict(existing)
                replay["replayed"] = True
                code = 200 if replay["status"] in ("done", "failed",
                                                   "interrupted") else 202
                # Trace ids are pure functions of (request_id, digest),
                # so the replay header matches the original execution's
                # spans — a retry correlates to the first run's trace.
                return code, replay, _trace_headers(replay) or trace_headers
            self._inflight[request_id] = req

        admit_start = time.monotonic()
        decision = self.admission.admit(tenant, trace_id=req.trace.trace_id)
        req.phases["admission"] = time.monotonic() - admit_start
        if not decision.admitted:
            with self._inflight_lock:
                self._inflight.pop(request_id, None)
            self.metrics.inc("service.shed", reason=decision.reason)
            self.events.live(
                "request-shed", tenant=tenant, reason=decision.reason,
                trace_id=req.trace.trace_id,
            )
            self._log_shed(req, decision.reason)
            retry_after = max(int(decision.retry_after_s + 0.999), 1)
            return (
                429,
                {
                    "error": f"admission refused: {decision.reason}",
                    "retry_after_s": decision.retry_after_s,
                    "trace_id": req.trace.trace_id,
                },
                {"Retry-After": str(retry_after), **trace_headers},
            )
        # Journal before enqueue, enqueue last: an executor only ever
        # sees a request whose journal entry and in-flight registration
        # already exist — ``done`` can never precede ``accepted`` and
        # ``_finish`` always finds the entry it pops.  A crash between
        # journal and enqueue at worst replays a request whose
        # execution is idempotent.
        try:
            self.state.journal_accepted(request_id, tenant, body)
        except OSError as exc:
            self.admission.release(trace_id=req.trace.trace_id)
            with self._inflight_lock:
                self._inflight.pop(request_id, None)
            return (
                503,
                {"error": f"could not journal request: {exc}"},
                {"Retry-After": "5"},
            )
        req.enqueued_at = time.monotonic()
        self.admission.enqueue(tenant, req, trace_id=req.trace.trace_id)
        self.events.live(
            "request-accepted",
            request=request_id,
            tenant=tenant,
            kind=body["kind"],
            trace_id=req.trace.trace_id,
        )
        response = {
            "request_id": request_id,
            "status": "queued",
            "digest": digest,
            "trace_id": req.trace.trace_id,
            "span_id": req.trace.span_id,
        }
        if body.get("deadline_s"):
            response["deadline_s"] = body["deadline_s"]
        return 202, response, trace_headers

    def _log_shed(self, req: _QueuedRequest, reason: str) -> None:
        """Record a shed in the request stream + RED counters."""
        try:
            record = self.request_log.append(
                "request-shed",
                trace_id=req.trace.trace_id,
                request=req.request_id,
                tenant=req.tenant,
                endpoint=req.endpoint,
                reason=reason,
            )
        except OSError:
            # An unwritable stream must not turn a clean 429 into a 500;
            # the RED counter below still accounts the shed.
            record = {
                "type": "request-shed",
                "tenant": req.tenant,
                "reason": reason,
            }
        record_span_metrics(self.metrics, record)

    def wait_for(self, request_id: str, timeout_s: float) -> dict | None:
        with self._inflight_lock:
            req = self._inflight.get(request_id)
        if req is None:
            return self.request_status(request_id)
        req.done.wait(timeout_s)
        return self.request_status(request_id)

    def request_status(self, request_id: str) -> dict | None:
        with self._inflight_lock:
            return self._status_locked(request_id)

    def _status_locked(self, request_id: str) -> dict | None:
        """:meth:`request_status` body; caller holds ``_inflight_lock``."""
        record = self.state.load_record(request_id)
        if record is not None:
            return record
        req = self._inflight.get(request_id)
        if req is None:
            return None
        return {
            "request_id": req.request_id,
            "status": req.status,
            "digest": req.digest,
            "trace_id": req.trace.trace_id,
            "span_id": req.trace.span_id,
        }

    # ------------------------------------------------------------------
    # execution (executor threads)
    # ------------------------------------------------------------------

    def _executor_loop(self) -> None:
        while not self._stop.is_set():
            taken = self.admission.take(timeout_s=0.2)
            if taken is None:
                continue
            _tenant, req = taken
            req.phases["queue"] = time.monotonic() - req.enqueued_at
            try:
                self._execute(req)
            except Exception as exc:  # noqa: BLE001 - terminal record
                self._finish(req, "failed", int(ExitCode.UNHEALTHY),
                             f"internal error: {exc}\n", cached=False)

    def _acquire_digest_lock(self, digest: str) -> None:
        with self._digest_locks_guard:
            entry = self._digest_locks.get(digest)
            if entry is None:
                entry = self._digest_locks[digest] = [threading.Lock(), 0]
            entry[1] += 1
        entry[0].acquire()

    def _release_digest_lock(self, digest: str) -> None:
        with self._digest_locks_guard:
            entry = self._digest_locks[digest]
            entry[0].release()
            entry[1] -= 1
            if entry[1] == 0:
                del self._digest_locks[digest]

    def _execute(self, req: _QueuedRequest) -> None:
        req.status = "running"
        body = req.body
        # Executions of equal content are serialized per digest: two
        # concurrent requests (a client retry racing its original, two
        # tenants asking the same question) must not fork two
        # Orchestrators into the shared campaign_dir(digest) — the
        # journal/worker machinery has no cross-instance locking.  The
        # loser of the race waits, then is served from the cache entry
        # the winner just wrote.
        self._acquire_digest_lock(req.digest)
        try:
            cache_start = time.monotonic()
            cached = self.state.cache.get(req.digest)
            req.phases["cache"] = time.monotonic() - cache_start
            hit = (
                cached is not None
                and isinstance(cached, dict)
                and "text" in cached
            )
            self.events.live(
                "request-cache",
                request=req.request_id,
                hit=bool(hit),
                trace_id=req.trace.trace_id,
            )
            if hit:
                self._finish(
                    req, cached["status"], cached["exit"], cached["text"],
                    cached=True,
                )
                return
            deadline = body.get("deadline_s")
            if deadline is not None and (
                time.monotonic() - req.accepted_at > deadline
            ):
                self._finish(
                    req, "failed", int(ExitCode.INTERRUPTED),
                    "deadline exceeded while queued\n", cached=False,
                    reason="deadline-expired",
                )
                return
            self.events.live(
                "request-executing",
                request=req.request_id,
                tenant=req.tenant,
                trace_id=req.trace.trace_id,
            )
            execute_start = time.monotonic()
            if body["kind"] == "bench":
                status, exit_code, text = self._run_bench(body)
            else:
                status, exit_code, text = self._run_campaign(body, req.trace)
            req.phases["execute"] = time.monotonic() - execute_start
            if status == "done":
                self.state.cache.put(
                    req.digest,
                    {"text": text, "exit": exit_code, "status": status},
                )
        finally:
            self._release_digest_lock(req.digest)
        self._finish(req, status, exit_code, text, cached=False)

    def _run_bench(self, body: dict) -> tuple[str, int, str]:
        try:
            ctx = ExecutionContext(
                body["scenario"], body["seed"], memo=self.model_cache
            )
            text = _render_bench(body["command"], ctx)
            return "done", int(ctx.exit_code()), text
        except ReproError as exc:
            return "failed", int(classify_error(exc)), f"{exc}\n"

    def _run_campaign(
        self, body: dict, trace: TraceContext | None = None
    ) -> tuple[str, int, str]:
        from ..campaign.orchestrator import Orchestrator
        from ..campaign.spec import get_spec

        directory = self.state.campaign_dir(request_digest(body))
        try:
            orch = Orchestrator(
                directory,
                spec=get_spec(body["spec"]),
                scenario=body["scenario"],
                seed=body["seed"],
                deadline_s=body.get("deadline_s"),
                jobs=body.get("jobs", 1),
                trace=trace.traceparent if trace else None,
            )
            code = int(orch.run_or_resume())
        except ReproError as exc:
            return "failed", int(classify_error(exc)), f"{exc}\n"
        if code == int(ExitCode.INTERRUPTED):
            return "interrupted", code, (
                "campaign stopped at its deadline; retry to resume\n"
            )
        # Result text: the table artifacts, concatenated in name order —
        # a pure function of the campaign, so retries after a crash are
        # byte-identical.
        parts: list[str] = []
        tables = orch.tables_dir
        if os.path.isdir(tables):
            for name in sorted(os.listdir(tables)):
                with open(os.path.join(tables, name), "r",
                          encoding="utf-8") as fh:
                    parts.append(f"# == {name} ==\n" + fh.read())
        status = "done" if code in (0, 1) else "failed"
        return status, code, "".join(parts)

    def _finish(
        self,
        req: _QueuedRequest,
        status: str,
        exit_code: int,
        text: str,
        cached: bool,
        reason: str | None = None,
    ) -> None:
        latency = time.monotonic() - req.accepted_at
        phases = {k: round(v, 6) for k, v in req.phases.items()}
        record = {
            "request_id": req.request_id,
            "tenant": req.tenant,
            "request": req.body,
            "digest": req.digest,
            "status": status,
            "exit": exit_code,
            "cached": cached,
            "text": text,
            # Latency attribution survives the process: journal replay
            # after a SIGKILL reconstructs where the time went, not
            # just what the answer was.
            "trace_id": req.trace.trace_id,
            "span_id": req.trace.span_id,
            "phases": phases,
        }
        if reason is not None:
            record["reason"] = reason
        # Terminal record first (atomic), then the journal's ``done``:
        # a crash between the two replays the request, finds the record
        # present, and skips — never the reverse.
        serialize_start = time.monotonic()
        self.state.write_record(req.request_id, record)
        self.state.journal_done(req.request_id, status, req.digest)
        req.phases["serialize"] = time.monotonic() - serialize_start
        req.status = status
        self.metrics.inc(
            "service.requests", kind=req.body["kind"], status=status
        )
        self.metrics.observe("service.latency_s", latency)
        self._log_span(req, status, cached, latency)
        ok = status == "done"
        self.slo.record(ok, latency)
        self._tenant_tracker(req.tenant).record(ok, latency)
        self.events.live(
            "request-completed",
            request=req.request_id,
            status=status,
            cached=cached,
            trace_id=req.trace.trace_id,
        )
        with self._inflight_lock:
            self._inflight.pop(req.request_id, None)
        req.done.set()

    def _log_span(
        self, req: _QueuedRequest, status: str, cached: bool, latency: float
    ) -> None:
        """Append the request's span to ``requests.ndjson`` + RED fold."""
        try:
            record = self.request_log.append(
                "request-span",
                trace_id=req.trace.trace_id,
                span_id=req.trace.span_id,
                request=req.request_id,
                tenant=req.tenant,
                endpoint=req.endpoint,
                status=status,
                cached=cached,
                latency_s=round(latency, 6),
                phases={k: round(v, 6) for k, v in req.phases.items()},
            )
        except OSError:
            # Same stance as _log_shed: observability must never make
            # a finished request fail.  Fold a minimal stand-in so the
            # RED series still count it.
            record = {
                "type": "request-span",
                "tenant": req.tenant,
                "endpoint": req.endpoint,
                "status": status,
                "latency_s": latency,
                "phases": {},
            }
        record_span_metrics(self.metrics, record)

    def _tenant_tracker(self, tenant: str) -> SLOTracker:
        with self._tenant_slo_lock:
            tracker = self._tenant_slo.get(tenant)
            if tracker is None:
                tracker = self._tenant_slo[tenant] = SLOTracker(
                    self.slo_config
                )
            return tracker

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def openmetrics(self) -> str:
        cache = self.state.cache.stats()
        for key in ("entries", "hits", "misses", "evictions", "quarantined"):
            self.metrics.set_gauge(f"service.cache.{key}", float(cache[key]))
        self.metrics.set_gauge("service.cache.hit_rate", cache["hit_rate"])
        admission = self.admission.stats()
        for key in ("depth", "admitted", "shed_tenant", "shed_backlog"):
            self.metrics.set_gauge(
                f"service.admission.{key}", float(admission[key])
            )
        self.metrics.set_gauge(
            "service.draining", 1.0 if self.draining else 0.0
        )
        return self.metrics.to_openmetrics()

    def board(self) -> dict:
        """The live service-board document (``GET /board``).

        One JSON object with everything ``pvc-bench service watch``
        renders: per-tenant in-flight/queued/shed/token-bucket state,
        RED counts and latency percentiles, phase percentiles, cache
        and admission stats, and the SLO burn snapshots.  The offline
        fold in :mod:`repro.obs.watch` produces the same shape from a
        dead state directory.
        """
        with self._inflight_lock:
            inflight = list(self._inflight.values())
        tenant_admission = self.admission.tenant_stats()
        latency = self.metrics.histogram("service.request.latency_s")
        phase_hist = self.metrics.histogram("service.request.phase_s")
        count = self.metrics.counter("service.request.count")
        errors = self.metrics.counter("service.request.errors")
        sheds = self.metrics.counter("service.request.sheds")
        with self._tenant_slo_lock:
            tenant_slo = dict(self._tenant_slo)
        tenants = (
            set(tenant_admission)
            | {r.tenant for r in inflight}
            | set(tenant_slo)
        )
        per_tenant: dict[str, dict] = {}
        for tenant in sorted(tenants):
            adm = tenant_admission.get(tenant, {})
            tracker = tenant_slo.get(tenant)
            per_tenant[tenant] = {
                "in_flight": sum(
                    1
                    for r in inflight
                    if r.tenant == tenant and r.status == "running"
                ),
                "queued": adm.get("queued", 0),
                "tokens": adm.get("tokens"),
                "capacity": adm.get("capacity"),
                "shed": int(
                    adm.get("shed") or sheds.total(tenant=tenant)
                ),
                "requests": int(count.total(tenant=tenant)),
                "errors": int(errors.total(tenant=tenant)),
                "p50_s": round(
                    latency.folded_percentile(0.5, tenant=tenant), 6
                ),
                "p99_s": round(
                    latency.folded_percentile(0.99, tenant=tenant), 6
                ),
                "slo": tracker.snapshot() if tracker else None,
            }
        phases = {
            phase: {
                "count": phase_hist.folded_state(phase=phase).total,
                "p50_s": round(
                    phase_hist.folded_percentile(0.5, phase=phase), 6
                ),
                "p99_s": round(
                    phase_hist.folded_percentile(0.99, phase=phase), 6
                ),
            }
            for phase in PHASES
        }
        return {
            "draining": self.draining,
            "pid": os.getpid(),
            "recovered": self._recovered,
            "cache": self.state.cache.stats(),
            "admission": self.admission.stats(),
            "tenants": per_tenant,
            "phases": phases,
            "slo": self.slo.snapshot(),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Bind executors + HTTP accept loop (background threads)."""
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._executor_loop,
                name=f"bench-exec-{index}",
                daemon=True,
            )
            thread.start()
            self._executors.append(thread)
        self.server.serve_background(name="bench-http")

    def begin_drain(self) -> None:
        """Refuse new work; current executions run to completion."""
        if self.draining:
            return
        self.draining = True
        with self._inflight_lock:
            running = sum(
                1 for r in self._inflight.values() if r.status == "running"
            )
        self.events.live(
            "service-drain",
            inflight=running,
            queued=self.admission.depth,
        )
        # Executors stop taking new queue items; whatever is queued
        # stays journalled for the next start.
        self._stop.set()
        self.admission.close()

    def stop(self, timeout_s: float | None = None) -> bool:
        """Drain gracefully and release every resource (idempotent)."""
        budget = self.drain_timeout_s if timeout_s is None else timeout_s
        deadline = time.monotonic() + budget
        self.begin_drain()
        for thread in self._executors:
            thread.join(max(deadline - time.monotonic(), 0.1))
        drained = self.server.shutdown_gracefully(
            max(deadline - time.monotonic(), 0.5)
        )
        return drained and not any(t.is_alive() for t in self._executors)

    def serve(self) -> int:
        """Foreground mode: run until SIGTERM/SIGINT, then drain."""
        stop = threading.Event()

        def handler(signum, frame):  # pragma: no cover - signal timing
            stop.set()

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, handler)
        self.start()
        print(
            f"serving benchmarks from {self.state.root} at {self.url} "
            f"({self.workers} executor(s); SIGTERM drains)",
            file=sys.stderr,
        )
        try:
            stop.wait()
        finally:
            for sig, old in previous.items():
                signal.signal(sig, old)
            clean = self.stop()
            print(
                "drained"
                if clean
                else "drain timed out; queued work persists for restart",
                file=sys.stderr,
            )
        return 0


def serve_bench_main(args) -> int:
    """Dispatch ``pvc-bench serve-bench --dir state [--port N] ...``."""
    if not args.dir:
        raise CampaignError("serve-bench needs --dir <state directory>")
    slo = SLOConfig(
        latency_s=getattr(args, "slo_latency", None) or 5.0,
        availability=getattr(args, "slo_availability", None) or 0.99,
    )
    daemon = BenchDaemon(
        args.dir,
        port=getattr(args, "port", None) or 0,
        workers=getattr(args, "workers", None) or DEFAULT_WORKERS,
        slo=slo,
    )
    return daemon.serve()
